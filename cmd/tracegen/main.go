// Command tracegen captures the two trace levels of the paper's §4.2: the
// POSIX-level trace of the out-of-core workload and the device-level block
// trace after a chosen file system mutates it. Traces are written in the
// binary format of internal/trace (or JSON with -json) and characterized on
// stderr; -fig6 prints the access-pattern comparison of Figure 6.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"oocnvm/internal/experiment"
	"oocnvm/internal/fs"
	"oocnvm/internal/nvm"
	"oocnvm/internal/ooc"
	"oocnvm/internal/trace"
	"oocnvm/internal/ufs"
)

func main() {
	var (
		matrix  = flag.Int("matrix", 512, "Hamiltonian footprint in MiB")
		panel   = flag.Int("panel", 8, "row-panel read size in MiB")
		apps    = flag.Int("apps", 4, "operator applications")
		fsName  = flag.String("fs", "GPFS", "file system: GPFS, UFS, EXT2, EXT3, EXT4, EXT4-L, XFS, JFS, REISERFS, BTRFS")
		posixF  = flag.String("posix", "", "write the POSIX-level trace to this file")
		blockF  = flag.String("block", "", "write the block-level trace to this file")
		asJSON  = flag.Bool("json", false, "write JSON instead of the binary format")
		fig6    = flag.Bool("fig6", false, "print the Figure 6 access-pattern comparison")
		entries = flag.Int("n", 64, "entries to print with -fig6")
		seed    = flag.Uint64("seed", 42, "random stream seed")
	)
	flag.Parse()
	if err := run(*matrix, *panel, *apps, *fsName, *posixF, *blockF, *asJSON, *fig6, *entries, *seed, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func buildFS(name string, capacity int64, seed uint64) (fs.FileSystem, error) {
	switch name {
	case "GPFS":
		return fs.NewGPFS(fs.DefaultGPFS(), capacity, seed)
	case "UFS":
		return &ufs.AsFileSystem{}, nil
	}
	for _, p := range fs.LocalProfiles() {
		if p.Name == name {
			return fs.New(p, capacity, seed)
		}
	}
	return nil, fmt.Errorf("unknown file system %q", name)
}

func run(matrix, panel, apps int, fsName, posixF, blockF string, asJSON, fig6 bool, entries int, seed uint64, out, errw io.Writer) error {
	wl := ooc.Workload{
		MatrixBytes:  int64(matrix) << 20,
		PanelBytes:   int64(panel) << 20,
		Applications: apps,
	}
	posix, err := wl.PosixTrace()
	if err != nil {
		return err
	}
	capacity := nvm.PaperGeometry().Capacity(nvm.Params(nvm.SLC))
	fsys, err := buildFS(fsName, capacity, seed)
	if err != nil {
		return err
	}
	block := fsys.Transform(posix)

	if fig6 {
		opt := experiment.DefaultOptions()
		opt.Workload = wl
		opt.Seed = seed
		s, err := experiment.FormatFig6(opt, entries)
		if err != nil {
			return err
		}
		fmt.Fprint(out, s)
	}

	st := trace.Characterize(block)
	fmt.Fprintf(errw, "posix ops: %d (%d MiB)\n", len(posix), wl.TotalBytes()>>20)
	fmt.Fprintf(errw, "%s block ops: %d, mean request %.1f KiB, %.1f%% sequential, %d metadata ops, %d sync ops\n",
		fsys.Name(), st.Ops, st.MeanSize/1024, 100*st.SequentialPct, st.MetaOps, st.SyncOps)

	if posixF != "" {
		if err := writeFile(posixF, func(f *os.File) error {
			if asJSON {
				return trace.EncodeJSON(f, posix)
			}
			return trace.WritePosixTrace(f, posix)
		}); err != nil {
			return err
		}
	}
	if blockF != "" {
		if err := writeFile(blockF, func(f *os.File) error {
			if asJSON {
				return trace.EncodeJSON(f, block)
			}
			return trace.WriteBlockTrace(f, block)
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

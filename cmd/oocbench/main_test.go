package main

import (
	"bytes"
	"strings"
	"testing"

	"oocnvm/internal/experiment"
	"oocnvm/internal/ooc"
)

func testOptions() experiment.Options {
	opt := experiment.DefaultOptions()
	opt.Workload = ooc.Workload{
		MatrixBytes:  16 << 20,
		PanelBytes:   4 << 20,
		Applications: 1,
	}
	opt.Seed = 42
	return opt
}

func TestOocbenchStaticTables(t *testing.T) {
	cases := []struct {
		name, fig, table, want string
	}{
		{"table1", "", "1", "Table 1"},
		{"table2", "", "2", "Table 2"},
		{"fig1", "1", "", "Figure 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(testOptions(), tc.fig, tc.table, false, false, false, false, false, false, nil, &out); err != nil {
				t.Fatalf("run: %v", err)
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Errorf("output missing %q:\n%s", tc.want, out.String())
			}
		})
	}
}

func TestOocbenchTopology(t *testing.T) {
	var out bytes.Buffer
	if err := run(testOptions(), "", "", false, true, false, false, false, false, nil, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Carver", "Carver-CNL", "preload"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestOocbenchEnergyAndDistributed(t *testing.T) {
	var out bytes.Buffer
	if err := run(testOptions(), "", "", false, false, true, false, false, false, nil, &out); err != nil {
		t.Fatalf("distributed: %v", err)
	}
	if !strings.Contains(out.String(), "cluster-scale OoC solve") {
		t.Errorf("distributed output unexpected:\n%s", out.String())
	}
	out.Reset()
	if err := run(testOptions(), "", "", false, false, false, true, false, false, nil, &out); err != nil {
		t.Fatalf("energy: %v", err)
	}
	if !strings.Contains(out.String(), "compute-local NVM") {
		t.Errorf("energy output unexpected:\n%s", out.String())
	}
}

func TestOocbenchCacheStudy(t *testing.T) {
	var out bytes.Buffer
	if err := run(testOptions(), "", "", false, false, false, false, true, false, nil, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "hit rate") {
		t.Errorf("cache output unexpected:\n%s", out.String())
	}
}

func TestOocbenchFigure7a(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement matrix in -short mode")
	}
	var out bytes.Buffer
	if err := run(testOptions(), "7a", "", false, false, false, false, false, false, nil, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Figure 7a", "ION-GPFS", "CNL-UFS"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestOocbenchTopologyDegraded(t *testing.T) {
	var out bytes.Buffer
	opt := testOptions()
	opt.NetProfile = "flaky"
	if err := run(opt, "", "", false, true, false, false, false, false, nil, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"degraded preload (flaky)", "degraded checkpoint drain (flaky)", "retries"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// Same seed, same profile: the degraded lines must be reproducible.
	var again bytes.Buffer
	if err := run(opt, "", "", false, true, false, false, false, false, nil, &again); err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if out.String() != again.String() {
		t.Error("degraded topology output not deterministic across runs")
	}
}

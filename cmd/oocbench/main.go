// Command oocbench regenerates the paper's tables and figures from the
// simulated stack. With no flags it runs the full evaluation matrix and
// prints everything in paper order.
//
// Usage:
//
//	oocbench [-fig 1|6|7a|7b|8a|8b|9a|9b|10a|10b|10c|10d] [-table 1|2]
//	         [-summary] [-topology] [-matrix MiB] [-panel MiB] [-apps N]
//	         [-seed N] [-qd N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"oocnvm/internal/cache"
	"oocnvm/internal/cluster"
	"oocnvm/internal/energy"
	"oocnvm/internal/experiment"
	"oocnvm/internal/fault"
	"oocnvm/internal/netfault"
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs/export"
	"oocnvm/internal/obs/report"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/ooc"
	"oocnvm/internal/sim"
	"oocnvm/internal/trace"
)

func main() {
	var (
		fig      = flag.String("fig", "", "regenerate one figure (1,6,7a,7b,8a,8b,9a,9b,10a,10b,10c,10d)")
		table    = flag.String("table", "", "regenerate one table (1,2)")
		summary  = flag.Bool("summary", false, "print only the headline ratios")
		topology = flag.Bool("topology", false, "print the cluster topologies and preload estimate")
		distrib  = flag.Bool("distributed", false, "print the 40-node cluster-scale comparison")
		energy   = flag.Bool("energy", false, "print the energy/cost comparison behind the paper's motivation")
		cacheF   = flag.Bool("cache", false, "print the host-side flash-cache study the paper argues against")
		chart    = flag.Bool("chart", false, "render figures 7a/8a as ASCII bar charts")
		matrix   = flag.Int("matrix", 512, "Hamiltonian footprint in MiB")
		panel    = flag.Int("panel", 8, "row-panel read size in MiB")
		apps     = flag.Int("apps", 4, "operator applications (2 per LOBPCG iteration)")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		qd       = flag.Int("qd", 32, "host queue depth")
		faultP   = flag.String("fault-profile", "none", "reliability profile for the achieved runs: none, fresh, worn, eol")
		netProf  string
		retDays  = flag.Float64("retention-days", 0, "age all data by this many days of retention")
		precycle = flag.Int64("precycle", 0, "pre-age every block by this many P/E cycles")
		durCkpt  = flag.Int64("durable-ckpt", 0, "FTL durable-metadata mode: checkpoint the mapping table every N host pages (0 = off)")
		exp      export.Flags
	)
	exp.Register(flag.CommandLine)
	export.RegisterNetProfile(flag.CommandLine, &netProf)
	flag.Parse()

	opt := experiment.DefaultOptions()
	opt.Workload = ooc.Workload{
		MatrixBytes:  int64(*matrix) << 20,
		PanelBytes:   int64(*panel) << 20,
		Applications: *apps,
	}
	opt.Seed = *seed
	opt.QueueDepth = *qd
	prof, err := fault.ForName(*faultP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocbench:", err)
		os.Exit(1)
	}
	opt.Fault = prof
	opt.RetentionDays = *retDays
	opt.PrecyclePE = *precycle
	opt.DurableCheckpointPages = *durCkpt
	opt.NetProfile = netProf
	opt.Obs = exp.Collector()
	samp := exp.Sampler()
	rec := exp.Recorder(opt.Obs)
	// With -hostperf every matrix cell records its own host-cost phase (and
	// the matrix serializes so the allocation attribution stays exact).
	opt.Host = exp.Host()
	stopProf, err := exp.StartProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocbench:", err)
		os.Exit(1)
	}

	if err := run(opt, *fig, *table, *summary, *topology, *distrib, *energy, *cacheF, *chart, samp, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "oocbench:", err)
		os.Exit(1)
	}
	// The cache study samples its own synthetic clock; every other mode gets
	// its timelines and latency attribution from a dedicated single
	// instrumented run (the matrix runs concurrently, which single-clock
	// sampler/recorder state cannot attach to).
	if (samp != nil || rec != nil) && !*cacheF {
		sopt := opt
		sopt.MeasureRemaining = false
		sopt.Sampler = samp
		sopt.Attrib = rec
		cfg, err := experiment.FindConfig("CNL-EXT4")
		if err == nil {
			_, err = experiment.Run(cfg, nvm.TLC, sopt)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "oocbench:", err)
			os.Exit(1)
		}
		if samp != nil {
			fmt.Printf("telemetry: sampled a dedicated CNL-EXT4/TLC run every %v\n", samp.Interval())
		}
		if rec != nil {
			fmt.Printf("attribution: decomposed a dedicated CNL-EXT4/TLC run (%d requests)\n", rec.Requests())
		}
	}
	if exp.Enabled() || opt.Host != nil {
		info := report.RunInfo{
			Title: "oocbench evaluation",
			Params: [][2]string{
				{"matrix MiB", fmt.Sprint(*matrix)},
				{"panel MiB", fmt.Sprint(*panel)},
				{"applications", fmt.Sprint(*apps)},
				{"queue depth", fmt.Sprint(*qd)},
				{"seed", fmt.Sprint(*seed)},
				{"fault profile", *faultP},
			},
		}
		if err := exp.Write(os.Stdout, opt.Obs, samp, rec, opt.Host, info); err != nil {
			fmt.Fprintln(os.Stderr, "oocbench:", err)
			os.Exit(1)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "oocbench:", err)
		os.Exit(1)
	}
}

func run(opt experiment.Options, fig, table string, summary, topology, distrib, energyFlag, cacheFlag, chart bool, samp *timeseries.Sampler, out io.Writer) error {
	cells := nvm.CellTypes

	switch {
	case table == "1":
		fmt.Fprint(out, experiment.FormatTable1())
		return nil
	case table == "2":
		fmt.Fprint(out, experiment.FormatTable2())
		return nil
	case fig == "1":
		fmt.Fprint(out, experiment.FormatFig1())
		return nil
	case fig == "6":
		s, err := experiment.FormatFig6(opt, 64)
		if err != nil {
			return err
		}
		fmt.Fprint(out, s)
		return nil
	case topology:
		return printTopology(opt, out)
	case distrib:
		return printDistributed(out)
	case energyFlag:
		return printEnergy(out)
	case cacheFlag:
		return printCacheStudy(opt, samp, out)
	}

	// Everything else needs the measurement matrix.
	var configs []experiment.Config
	switch fig {
	case "7a", "7b":
		configs = experiment.FileSystemConfigs()
	case "8a", "8b":
		configs = experiment.DeviceConfigs()
	default:
		configs = experiment.Table2()
	}
	ms, err := experiment.Matrix(configs, cells, opt)
	if err != nil {
		return err
	}

	switch fig {
	case "7a":
		if chart {
			fmt.Fprint(out, experiment.BandwidthChart("Figure 7a", ms, configs, nvm.SLC))
			fmt.Fprintln(out)
			fmt.Fprint(out, experiment.BandwidthChart("Figure 7a", ms, configs, nvm.TLC))
			break
		}
		fmt.Fprint(out, experiment.FormatBandwidthTable("Figure 7a", ms, configs, cells))
	case "7b":
		fmt.Fprint(out, experiment.FormatRemainingTable("Figure 7b", ms, configs, cells))
	case "8a":
		if chart {
			fmt.Fprint(out, experiment.BandwidthChart("Figure 8a", ms, configs, nvm.PCM))
			break
		}
		fmt.Fprint(out, experiment.FormatBandwidthTable("Figure 8a", ms, configs, cells))
	case "8b":
		fmt.Fprint(out, experiment.FormatRemainingTable("Figure 8b", ms, configs, cells))
	case "9a":
		fmt.Fprint(out, experiment.FormatChannelUtilTable(ms, configs, cells))
	case "9b":
		fmt.Fprint(out, experiment.FormatPackageUtilTable(ms, configs, cells))
	case "10a":
		fmt.Fprint(out, experiment.FormatBreakdownTable(nvm.TLC, ms, configs))
	case "10b":
		fmt.Fprint(out, experiment.FormatPALTable(nvm.TLC, ms, configs))
	case "10c":
		fmt.Fprint(out, experiment.FormatBreakdownTable(nvm.PCM, ms, configs))
	case "10d":
		fmt.Fprint(out, experiment.FormatPALTable(nvm.PCM, ms, configs))
	case "":
		if summary {
			s, err := experiment.Summarize(ms, cells)
			if err != nil {
				return err
			}
			fmt.Fprint(out, s.Format(cells))
			return nil
		}
		// Full report in paper order.
		fmt.Fprint(out, experiment.FormatFig1())
		fmt.Fprintln(out)
		fmt.Fprint(out, experiment.FormatTable1())
		fmt.Fprintln(out)
		fmt.Fprint(out, experiment.FormatTable2())
		fmt.Fprintln(out)
		if s, err := experiment.FormatFig6(opt, 32); err == nil {
			fmt.Fprint(out, s)
			fmt.Fprintln(out)
		}
		fsCfg := experiment.FileSystemConfigs()
		devCfg := experiment.DeviceConfigs()
		fmt.Fprint(out, experiment.FormatBandwidthTable("Figure 7a", ms, fsCfg, cells))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiment.FormatRemainingTable("Figure 7b", ms, fsCfg, cells))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiment.FormatBandwidthTable("Figure 8a", ms, devCfg, cells))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiment.FormatRemainingTable("Figure 8b", ms, devCfg, cells))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiment.FormatChannelUtilTable(ms, configs, cells))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiment.FormatPackageUtilTable(ms, configs, cells))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiment.FormatBreakdownTable(nvm.TLC, ms, configs))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiment.FormatPALTable(nvm.TLC, ms, configs))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiment.FormatBreakdownTable(nvm.PCM, ms, configs))
		fmt.Fprintln(out)
		fmt.Fprint(out, experiment.FormatPALTable(nvm.PCM, ms, configs))
		fmt.Fprintln(out)
		s, err := experiment.Summarize(ms, cells)
		if err != nil {
			return err
		}
		fmt.Fprint(out, s.Format(cells))
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func printDistributed(out io.Writer) error {
	job := cluster.DefaultDistributedJob()
	ion, cnl, err := cluster.SimulateDistributed(cluster.Carver(), job)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cluster-scale OoC solve: %d nodes, %d GiB Hamiltonian, %d applications\n",
		job.Nodes, job.MatrixBytes>>30, job.Applications)
	for _, r := range []cluster.DistributedResult{ion, cnl} {
		fmt.Fprintf(out, "  %-10s per-application: I/O %v + comm %v = %v  (node read %.2f GB/s)\n",
			r.Placement, r.IOTime, r.CommTime, r.PerApp, r.NodeReadBW/1e9)
	}
	fmt.Fprintf(out, "  migrating the SSDs to the compute nodes: %.1fx faster end to end\n",
		cluster.Speedup(ion, cnl))
	return nil
}

func printEnergy(out io.Writer) error {
	// A 256 GiB per-node dataset share over a one-hour solve at 70% activity.
	c, err := energy.Compare(256<<30, 4<<30, 3600*sim.Second, 0.7)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "provisioning a 256 GiB per-node out-of-core dataset (per node):")
	for _, a := range []energy.Approach{c.InMemory, c.NVM} {
		fmt.Fprintf(out, "  %-20s DRAM %3d GiB, SSD %3d GiB, IB ports %d: $%.0f capital, %.0f kJ per hour-long solve\n",
			a.Name, a.DRAMBytes>>30, a.SSDBytes>>30, a.NetworkPorts,
			a.CapitalCost(), a.RunEnergy(3600*sim.Second, 0.7)/1000)
	}
	fmt.Fprintf(out, "  distributed DRAM costs %.1fx the capital and %.1fx the energy of compute-local NVM\n",
		c.CapitalRatio, c.EnergyRatio)
	return nil
}

func printCacheStudy(opt experiment.Options, samp *timeseries.Sampler, out io.Writer) error {
	posix, err := opt.Workload.PosixTrace()
	if err != nil {
		return err
	}
	ops := make([]trace.BlockOp, 0, len(posix))
	for _, p := range posix {
		ops = append(ops, trace.BlockOp{Kind: p.Kind, Offset: p.Offset, Size: p.Size})
	}
	const fastBW, slowBW = 3.06e9, 1.05e9 // CNL-UFS vs ION-GPFS envelopes
	fmt.Fprintf(out, "host-side flash cache on the OoC trace (%d MiB working set, LRU, 64 KiB blocks):\n",
		opt.Workload.MatrixBytes>>20)
	for _, frac := range []int64{2, 1} {
		capacity := opt.Workload.MatrixBytes / frac
		// Only the half-sized cache (the interesting heat-up curve) feeds the
		// report's timeline; the sampler keeps one clock.
		ts := samp
		if frac != 2 {
			ts = nil
		}
		st, err := cache.RunStudySampled(ops, capacity, 64<<10, opt.Workload.MatrixBytes, fastBW, slowBW, ts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  cache = dataset/%d: hit rate %5.1f%%, effective %7.0f MB/s, heat-up %v\n",
			frac, 100*st.HitRate, st.EffectiveBW/1e6, st.HeatUp)
	}
	fmt.Fprintf(out, "  application-managed UFS (no cache):              %7.0f MB/s, no heat-up\n", fastBW/1e6)
	fmt.Fprintln(out, "  (the paper's §1 argument: scan-everything OoC traffic defeats LRU caching)")
	return nil
}

func printTopology(opt experiment.Options, out io.Writer) error {
	for _, t := range []cluster.Topology{cluster.Carver(), cluster.ComputeLocal()} {
		fmt.Fprintf(out, "%s: %d CNs (%d cores), %d OoC CNs, %d IONs, %d SSDs, placement %s, network %s\n",
			t.Name, t.ComputeNodes, t.ComputeNodes*t.CoresPerCN, t.OoCComputeNodes,
			t.IONs, t.SSDs(), t.Placement, t.Network.Name)
	}
	res, err := cluster.Preload(cluster.ComputeLocal(), cluster.PreloadPlan{
		DatasetBytes:  opt.Workload.MatrixBytes,
		OverlapWindow: 30 * sim.Second,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "preload of %d MiB dataset: %v (disk streaming %.0f MB/s, hidden behind prior job: %v)\n",
		opt.Workload.MatrixBytes>>20, res.Duration, res.DiskBW/1e6, res.Hidden)

	// With -net-profile the same preload and a checkpoint drain are rerun
	// across the degraded fabric, showing the retry/goodput cost.
	if opt.NetProfile != "" && opt.NetProfile != "none" {
		prof, err := netfault.ForName(opt.NetProfile)
		if err != nil {
			return err
		}
		dopt := cluster.DegradedOptions{Profile: prof, Seed: opt.Seed}
		deg, err := cluster.PreloadDegraded(cluster.ComputeLocal(), cluster.PreloadPlan{
			DatasetBytes:  opt.Workload.MatrixBytes,
			OverlapWindow: 30 * sim.Second,
		}, dopt)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "degraded preload (%s): %v\n", opt.NetProfile, deg.Transfer)
		drain, err := cluster.DrainCheckpoint(cluster.ComputeLocal(), cluster.CheckpointPlan{
			SnapshotBytes: opt.Workload.MatrixBytes,
		}, dopt)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "degraded checkpoint drain (%s): %v\n", opt.NetProfile, drain.Transfer)
	}
	return nil
}

// Command benchjson converts the text output of `go test -bench -benchmem`
// into a JSON array so benchmark results can be archived and diffed between
// runs (see the `make bench` target, which writes BENCH_results.json).
//
// Repeated runs of the same benchmark (`go test -count=N`) are aggregated
// into one entry: the primary ns/op, B/op and allocs/op take the minimum
// across samples (the least-noise estimate — scheduling and GC interference
// only ever add time), custom b.ReportMetric units take the median, the
// iteration count is the honest total across all samples, and a `samples`
// field records how many runs backed the entry. A single run keeps the old
// shape (samples omitted when 1).
//
// With -history FILE, one JSONL record per invocation is appended to FILE:
// the run's environment (date, git SHA, go version, GOMAXPROCS, goos/goarch,
// the cpu line from the bench header) plus the aggregated results — the
// benchmark trajectory the HTML report's sparklines read.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Samples     int                `json:"samples,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// header carries the environment lines `go test -bench` prints before the
// benchmark results.
type header struct {
	GOOS, GOARCH, CPU string
}

// parse reads `go test -bench` text and returns one result per benchmark
// line, in input order, plus the goos/goarch/cpu header. Non-benchmark lines
// (PASS, ok) are skipped; a malformed benchmark line is an error rather than
// silent loss.
func parse(r io.Reader) ([]result, header, error) {
	var out []result
	var hdr header
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			hdr.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			hdr.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			hdr.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, hdr, fmt.Errorf("malformed benchmark line: %q", line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, hdr, fmt.Errorf("benchmark %s: bad iteration count %q", fields[0], fields[1])
		}
		res := result{Name: fields[0], Iterations: iters, Samples: 1}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, hdr, fmt.Errorf("benchmark %s: bad value %q", fields[0], fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		out = append(out, res)
	}
	return out, hdr, sc.Err()
}

// aggregate folds repeated runs of the same benchmark (-count=N) into one
// entry per name, keeping first-appearance order. Minimum for the primary
// columns, median for custom metrics, summed iterations, sample count.
func aggregate(results []result) []result {
	type group struct {
		agg     result
		metrics map[string][]float64
	}
	var order []string
	groups := make(map[string]*group)
	for _, r := range results {
		g, ok := groups[r.Name]
		if !ok {
			g = &group{agg: r, metrics: make(map[string][]float64)}
			g.agg.Metrics = nil
			groups[r.Name] = g
			order = append(order, r.Name)
			for unit, v := range r.Metrics {
				g.metrics[unit] = append(g.metrics[unit], v)
			}
			continue
		}
		g.agg.Samples++
		g.agg.Iterations += r.Iterations
		if r.NsPerOp < g.agg.NsPerOp {
			g.agg.NsPerOp = r.NsPerOp
		}
		if r.BytesPerOp < g.agg.BytesPerOp {
			g.agg.BytesPerOp = r.BytesPerOp
		}
		if r.AllocsPerOp < g.agg.AllocsPerOp {
			g.agg.AllocsPerOp = r.AllocsPerOp
		}
		for unit, v := range r.Metrics {
			g.metrics[unit] = append(g.metrics[unit], v)
		}
	}
	out := make([]result, 0, len(order))
	for _, name := range order {
		g := groups[name]
		if len(g.metrics) > 0 {
			g.agg.Metrics = make(map[string]float64, len(g.metrics))
			for unit, vs := range g.metrics {
				g.agg.Metrics[unit] = median(vs)
			}
		}
		if g.agg.Samples == 1 {
			g.agg.Samples = 0 // omitempty: single runs keep the old shape
		}
		out = append(out, g.agg)
	}
	return out
}

func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// envInfo is the run's environment metadata recorded with each history
// entry, so a trajectory point can be traced back to the machine and commit
// that produced it.
type envInfo struct {
	Date       string `json:"date"`
	GitSHA     string `json:"git_sha,omitempty"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu,omitempty"`
}

type historyEntry struct {
	envInfo
	Results []result `json:"results"`
}

// gitSHA reports the checked-out commit, empty when not in a git repository
// (history entries then key on the date alone).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// appendHistory writes one JSONL record for this run to path.
func appendHistory(path string, results []result, hdr header) error {
	env := envInfo{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       hdr.GOOS,
		GOARCH:     hdr.GOARCH,
		CPU:        hdr.CPU,
	}
	if env.GOOS == "" {
		env.GOOS = runtime.GOOS
	}
	if env.GOARCH == "" {
		env.GOARCH = runtime.GOARCH
	}
	line, err := json.Marshal(historyEntry{envInfo: env, Results: results})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(in io.Reader, out io.Writer, historyPath string) error {
	parsed, hdr, err := parse(in)
	if err != nil {
		return err
	}
	results := aggregate(parsed)
	if results == nil {
		results = []result{}
	}
	if historyPath != "" {
		if err := appendHistory(historyPath, results, hdr); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func main() {
	history := flag.String("history", "", "append this run as one JSONL record to the named history file")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *history); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Command benchjson converts the text output of `go test -bench -benchmem`
// into a JSON array so benchmark results can be archived and diffed between
// runs (see the `make bench` target, which writes BENCH_results.json).
//
// Benchmarks appear in input order. Only the standard ns/op, B/op and
// allocs/op columns are recorded; custom b.ReportMetric units (the MB/s
// figures the paper benchmarks report) land in the metrics map keyed by
// their unit string.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// parse reads `go test -bench` text and returns one result per benchmark
// line, in input order. Non-benchmark lines (PASS, ok, goos headers) are
// skipped; a malformed benchmark line is an error rather than silent loss.
func parse(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("malformed benchmark line: %q", line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchmark %s: bad iteration count %q", fields[0], fields[1])
		}
		res := result{Name: fields[0], Iterations: iters}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", fields[0], fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func run(in io.Reader, out io.Writer) error {
	results, err := parse(in)
	if err != nil {
		return err
	}
	if results == nil {
		results = []result{}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

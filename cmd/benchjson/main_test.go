package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: oocnvm
BenchmarkTable1CellLatencies/SLC-8         	 1000000	      25.5 ns/op	     128 B/op	       3 allocs/op
BenchmarkFig7aBandwidth-8                  	       1	1234567 ns/op	  3060.0 MB/s/CNL-UFS_SLC	 2048 B/op	      12 allocs/op
PASS
ok  	oocnvm	1.234s
`

func TestBenchjsonParse(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var results []result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkTable1CellLatencies/SLC-8" || r.Iterations != 1000000 ||
		r.NsPerOp != 25.5 || r.BytesPerOp != 128 || r.AllocsPerOp != 3 {
		t.Errorf("first result wrong: %+v", r)
	}
	if got := results[1].Metrics["MB/s/CNL-UFS_SLC"]; got != 3060 {
		t.Errorf("custom metric = %v, want 3060", got)
	}
}

func TestBenchjsonEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok x 0.1s\n"), &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("want empty array, got %q", out.String())
	}
}

func TestBenchjsonRejectsMalformed(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("BenchmarkX notanumber ns/op\n"), &out); err == nil {
		t.Fatal("malformed line accepted")
	}
}

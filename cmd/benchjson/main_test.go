package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: oocnvm
BenchmarkTable1CellLatencies/SLC-8         	 1000000	      25.5 ns/op	     128 B/op	       3 allocs/op
BenchmarkFig7aBandwidth-8                  	       1	1234567 ns/op	  3060.0 MB/s/CNL-UFS_SLC	 2048 B/op	      12 allocs/op
PASS
ok  	oocnvm	1.234s
`

func TestBenchjsonParse(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	var results []result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkTable1CellLatencies/SLC-8" || r.Iterations != 1000000 ||
		r.NsPerOp != 25.5 || r.BytesPerOp != 128 || r.AllocsPerOp != 3 {
		t.Errorf("first result wrong: %+v", r)
	}
	if r.Samples != 0 {
		t.Errorf("single run should omit samples, got %d", r.Samples)
	}
	if got := results[1].Metrics["MB/s/CNL-UFS_SLC"]; got != 3060 {
		t.Errorf("custom metric = %v, want 3060", got)
	}
}

func TestBenchjsonEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok x 0.1s\n"), &out, ""); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("want empty array, got %q", out.String())
	}
}

func TestBenchjsonRejectsMalformed(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("BenchmarkX notanumber ns/op\n"), &out, ""); err == nil {
		t.Fatal("malformed line accepted")
	}
}

// repeated is what `go test -bench=X -count=3` emits: the same benchmark
// three times, with run-to-run time noise and a custom metric.
const repeated = `goos: linux
goarch: amd64
cpu: Intel Xeon
BenchmarkX-8	     100	 1500 ns/op	  5.0 iters	  256 B/op	  4 allocs/op
BenchmarkX-8	     120	 1000 ns/op	  7.0 iters	  256 B/op	  4 allocs/op
BenchmarkX-8	     110	 1200 ns/op	  6.0 iters	  256 B/op	  4 allocs/op
BenchmarkY-8	      10	 9000 ns/op	  512 B/op	  8 allocs/op
PASS
`

func TestBenchjsonAggregatesRepeatedRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(repeated), &out, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	var results []result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (aggregated)", len(results))
	}
	x := results[0]
	if x.Name != "BenchmarkX-8" {
		t.Fatalf("first result %q, want BenchmarkX-8", x.Name)
	}
	if x.Samples != 3 {
		t.Errorf("samples = %d, want 3", x.Samples)
	}
	if x.NsPerOp != 1000 {
		t.Errorf("ns/op = %v, want the minimum 1000", x.NsPerOp)
	}
	if x.Iterations != 330 {
		t.Errorf("iterations = %d, want the honest total 330", x.Iterations)
	}
	if got := x.Metrics["iters"]; got != 6 {
		t.Errorf("custom metric median = %v, want 6", got)
	}
	if results[1].Samples != 0 {
		t.Errorf("single-sample benchmark should omit samples, got %d", results[1].Samples)
	}
}

func TestBenchjsonHistoryAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	for i := 0; i < 2; i++ {
		var out bytes.Buffer
		if err := run(strings.NewReader(repeated), &out, path); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("history has %d lines, want 2", len(lines))
	}
	var e historyEntry
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("history line is not JSON: %v", err)
	}
	if e.GoVersion == "" || e.GOMAXPROCS == 0 || e.Date == "" {
		t.Errorf("missing env metadata: %+v", e.envInfo)
	}
	if e.GOOS != "linux" || e.CPU != "Intel Xeon" {
		t.Errorf("header env not recorded: goos=%q cpu=%q", e.GOOS, e.CPU)
	}
	if len(e.Results) != 2 || e.Results[0].NsPerOp != 1000 {
		t.Errorf("history results wrong: %+v", e.Results)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oocnvm/internal/obs/export"
	"oocnvm/internal/trace"
)

// writeTestTrace writes a small synthetic block trace and returns its path.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	var ops []trace.BlockOp
	for i := int64(0); i < 24; i++ {
		ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: i * (1 << 20), Size: 1 << 20})
		if i%8 == 7 {
			ops = append(ops, trace.BlockOp{Kind: trace.Write, Offset: 1 << 30, Size: 16 << 10, Meta: true})
		}
	}
	path := filepath.Join(t.TempDir(), "test.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteBlockTrace(f, ops); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplayObservabilityEndToEnd drives the full replay pipeline with both
// exports enabled and validates (a) the trace file is well-formed Chrome
// trace_event JSON with spans from multiple layers, and (b) the exported
// metrics reconcile with the printed result: the ssd span/bandwidth gauges
// and data-byte counter must match the replay's own Result within 1%.
func TestReplayObservabilityEndToEnd(t *testing.T) {
	dir := t.TempDir()
	traceOut := filepath.Join(dir, "trace.json")
	metricsOut := filepath.Join(dir, "metrics.json")
	var out bytes.Buffer
	err := run(options{
		file:     writeTestTrace(t),
		cfgName:  "CNL-UFS",
		cellName: "SLC",
		qd:       32,
		seed:     42,
		exp:      export.Flags{TraceOut: traceOut, MetricsOut: metricsOut},
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	// Console output: Result.String() table plus the stage breakdown.
	for _, want := range []string{"elapsed", "bandwidth", "per-stage latency breakdown:", "ssd.request.latency"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("console output missing %q:\n%s", want, out.String())
		}
	}

	// (a) Chrome trace structure.
	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	layers := map[string]bool{}
	var spans int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				layers[ev.Args.Name] = true
			}
		case "X":
			spans++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("bad span ts/dur: %+v", ev)
			}
		}
	}
	if spans == 0 {
		t.Fatal("trace has no spans")
	}
	for _, layer := range []string{"ssd", "nvm", "interconnect"} {
		if !layers[layer] {
			t.Fatalf("trace missing layer %q (got %v)", layer, layers)
		}
	}

	// (b) Metrics reconciliation within 1%.
	mraw, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Gauges []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"gauges"`
		Histograms []struct {
			Name  string `json:"name"`
			Count int64  `json:"count"`
			P50Ps int64  `json:"p50_ps"`
			P95Ps int64  `json:"p95_ps"`
			P99Ps int64  `json:"p99_ps"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v", err)
	}
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}

	// The replay's own numbers, recomputed from an identical un-probed run.
	var plain bytes.Buffer
	if err := run(options{
		file: writeTestTrace(t), cfgName: "CNL-UFS", cellName: "SLC", qd: 32, seed: 42,
	}, &plain); err != nil {
		t.Fatal(err)
	}

	if got, want := counters["ssd.data_bytes"], int64(24<<20); got != want {
		t.Fatalf("ssd.data_bytes = %d, want %d", got, want)
	}
	spanPs, bwBps := gauges["ssd.span_ps"], gauges["ssd.bandwidth_bps"]
	if spanPs <= 0 || bwBps <= 0 {
		t.Fatalf("degenerate ssd gauges: span=%v bw=%v", spanPs, bwBps)
	}
	// bandwidth * span must equal data bytes within 1% (ps → s is 1e12).
	recon := bwBps * spanPs / 1e12
	if diff := math.Abs(recon-float64(24<<20)) / float64(24<<20); diff > 0.01 {
		t.Fatalf("bandwidth*span = %.0f bytes, want %d within 1%% (off by %.2f%%)",
			recon, 24<<20, 100*diff)
	}
	// The nvm registry was absorbed: device counters and span gauge present
	// and consistent with the ssd view.
	if counters["nvm.reads"] == 0 {
		t.Fatal("nvm.reads missing from absorbed registry")
	}
	if nvmSpan := gauges["nvm.span_ps"]; math.Abs(nvmSpan-spanPs)/spanPs > 0.01 {
		t.Fatalf("nvm.span_ps %v disagrees with ssd.span_ps %v", nvmSpan, spanPs)
	}

	// Latency histograms exported with percentiles.
	var sawLatency bool
	for _, h := range snap.Histograms {
		if h.Name == "ssd.request.latency" {
			sawLatency = true
			if h.Count == 0 || h.P50Ps <= 0 || h.P95Ps < h.P50Ps || h.P99Ps < h.P95Ps {
				t.Fatalf("degenerate latency histogram: %+v", h)
			}
		}
	}
	if !sawLatency {
		t.Fatal("ssd.request.latency histogram missing")
	}

	// Observability must not perturb the simulation: identical headline
	// table with and without probes.
	probed := out.String()[:strings.Index(out.String(), "per-stage")]
	if !strings.Contains(probed, "elapsed") || !strings.HasPrefix(plain.String(), probed[:strings.Index(probed, "latency:")]) {
		t.Fatalf("probed and unprobed runs diverge:\nprobed:\n%s\nplain:\n%s", probed, plain.String())
	}
}

// TestReplayNoExportFlagsNoFiles ensures observability stays off (and no
// files appear) when the flags are not given.
func TestReplayNoExportFlagsNoFiles(t *testing.T) {
	var out bytes.Buffer
	if err := run(options{
		file: writeTestTrace(t), cfgName: "CNL-EXT4", cellName: "MLC", qd: 32, seed: 1,
	}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "per-stage latency breakdown") {
		t.Fatal("stage table printed without a collector")
	}
}

// TestReplayFaultProfileEndToEnd runs the CLI pipeline with the eol fault
// profile on a TLC drive and checks the fault machinery surfaces in the
// console output: the profile banner, the fault summary counters, and the
// first-error line for uncorrectable reads. A "none" run of the same trace
// must print no fault summary at all.
func TestReplayFaultProfileEndToEnd(t *testing.T) {
	file := writeTestTrace(t)
	var out bytes.Buffer
	err := run(options{
		file: file, cfgName: "CNL-UFS", cellName: "TLC", qd: 32, seed: 42,
		faultProfile: "eol",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fault profile: eol", "fault reads", "uncorrectable", "first error:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("faulted replay output missing %q:\n%s", want, out.String())
		}
	}

	// Determinism: a second identical run prints byte-identical output.
	var again bytes.Buffer
	if err := run(options{
		file: file, cfgName: "CNL-UFS", cellName: "TLC", qd: 32, seed: 42,
		faultProfile: "eol",
	}, &again); err != nil {
		t.Fatal(err)
	}
	if out.String() != again.String() {
		t.Fatalf("faulted replay not deterministic:\n%s\nvs\n%s", out.String(), again.String())
	}

	// The same trace under the zeroed profile stays silent about faults.
	var clean bytes.Buffer
	if err := run(options{
		file: file, cfgName: "CNL-UFS", cellName: "TLC", qd: 32, seed: 42,
		faultProfile: "none",
	}, &clean); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.String(), "fault") {
		t.Fatalf("zeroed profile printed fault state:\n%s", clean.String())
	}

	// Unknown profiles are rejected with the roster, not a crash.
	if err := run(options{
		file: file, cfgName: "CNL-UFS", cellName: "TLC", qd: 32, seed: 42,
		faultProfile: "bogus",
	}, &out); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("bad profile error = %v", err)
	}
}

// TestReplayExportsGoldenDeterminism is the telemetry determinism contract:
// two replays of the same trace with the same seed must produce byte-identical
// metrics (JSON and CSV), report HTML, and report series CSV. Everything in
// the export path is driven by the simulated clock, so any divergence means
// wall time or map order leaked into an artifact.
func TestReplayExportsGoldenDeterminism(t *testing.T) {
	file := writeTestTrace(t)
	artifacts := func(dir string) (opts options, paths []string) {
		opts = options{
			file: file, cfgName: "CNL-EXT4", cellName: "TLC", qd: 32, seed: 7,
			faultProfile: "worn",
			exp: export.Flags{
				MetricsOut: filepath.Join(dir, "metrics.json"),
				ReportOut:  filepath.Join(dir, "report.html"),
				TraceOut:   filepath.Join(dir, "trace.json"),
				SampleUS:   100,
				Attrib:     true,
				AttribOut:  filepath.Join(dir, "anatomy.csv"),
				AttribTop:  16,
			},
		}
		paths = []string{
			opts.exp.MetricsOut,
			filepath.Join(dir, "metrics.csv"),
			opts.exp.ReportOut,
			filepath.Join(dir, "report.csv"),
			opts.exp.TraceOut,
			opts.exp.AttribOut,
		}
		return opts, paths
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	optsA, pathsA := artifacts(dirA)
	optsB, pathsB := artifacts(dirB)
	// The CSV metrics flavor rides along via a second metrics path.
	var outA, outB bytes.Buffer
	if err := run(optsA, &outA); err != nil {
		t.Fatal(err)
	}
	csvOptsA := optsA
	csvOptsA.exp = export.Flags{MetricsOut: pathsA[1]}
	if err := run(csvOptsA, &outA); err != nil {
		t.Fatal(err)
	}
	if err := run(optsB, &outB); err != nil {
		t.Fatal(err)
	}
	csvOptsB := optsB
	csvOptsB.exp = export.Flags{MetricsOut: pathsB[1]}
	if err := run(csvOptsB, &outB); err != nil {
		t.Fatal(err)
	}

	// Console comparison skips the confirmation lines (they embed the
	// per-run temp paths); everything else must match byte for byte.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "written to") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(outA.String()) != strip(outB.String()) {
		t.Fatalf("console output diverged:\n%s\nvs\n%s", outA.String(), outB.String())
	}
	for i := range pathsA {
		a, err := os.ReadFile(pathsA[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pathsB[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 {
			t.Fatalf("artifact %s empty", pathsA[i])
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("artifact %s differs between same-seed runs", filepath.Base(pathsA[i]))
		}
	}

	// The report must carry the acceptance floor of distinct timelines.
	csv, err := os.ReadFile(pathsA[3])
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]bool{}
	for _, line := range strings.Split(string(csv), "\n")[1:] {
		if i := strings.IndexByte(line, ','); i > 0 {
			series[line[:i]] = true
		}
	}
	if len(series) < 6 {
		t.Fatalf("report CSV has %d distinct series, want >= 6: %v", len(series), series)
	}
	html, err := os.ReadFile(pathsA[2])
	if err != nil {
		t.Fatal(err)
	}
	for name := range series {
		if !strings.Contains(string(html), name) {
			t.Fatalf("report HTML missing sampled series %q", name)
		}
	}
	// The byte-compare above therefore also pins the attribution sections:
	// make sure they are actually in the report, not vacuously absent.
	for _, want := range []string{"Component breakdown", "Slowest requests"} {
		if !strings.Contains(string(html), want) {
			t.Fatalf("report HTML missing attribution section %q", want)
		}
	}
	anatomy, err := os.ReadFile(pathsA[5])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(anatomy), "id,kind,offset,size") {
		t.Fatalf("attribution CSV header wrong: %q", strings.SplitN(string(anatomy), "\n", 2)[0])
	}
}

func TestReplayNetProfileStaging(t *testing.T) {
	var out bytes.Buffer
	err := run(options{
		file: writeTestTrace(t), cfgName: "CNL-UFS", cellName: "SLC",
		qd: 32, seed: 7, netProfile: "lossy",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "staging (net profile lossy)") {
		t.Errorf("output missing staging line:\n%s", out.String())
	}

	// The default clean fabric must not add a staging line.
	var clean bytes.Buffer
	err = run(options{
		file: writeTestTrace(t), cfgName: "CNL-UFS", cellName: "SLC",
		qd: 32, seed: 7,
	}, &clean)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.String(), "staging") {
		t.Errorf("clean replay grew a staging line:\n%s", clean.String())
	}

	if err := run(options{
		file: writeTestTrace(t), cfgName: "CNL-UFS", cellName: "SLC",
		qd: 32, netProfile: "bogus",
	}, &out); err == nil {
		t.Fatal("unknown net profile accepted")
	}
}

// TestDurableReportSurface pins the crash-consistency acceptance criterion
// on the artifact surface: without -durable-ckpt the report carries no
// trace of the durable-metadata machinery (no journal/checkpoint series,
// no meta-journal attribution component), and with it set the journal and
// checkpoint series appear.
func TestDurableReportSurface(t *testing.T) {
	file := writeTestTrace(t)
	render := func(durable int64) string {
		dir := t.TempDir()
		opts := options{
			file: file, cfgName: "CNL-EXT4", cellName: "TLC", qd: 32, seed: 7,
			durableCkpt: durable,
			exp: export.Flags{
				ReportOut: filepath.Join(dir, "report.html"),
				SampleUS:  100,
				Attrib:    true,
			},
		}
		var out bytes.Buffer
		if err := run(opts, &out); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(opts.exp.ReportOut)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	off := render(0)
	for _, s := range []string{"ftl.journal", "ftl.ckpt", "meta-journal"} {
		if strings.Contains(off, s) {
			t.Fatalf("durable-off report mentions %q", s)
		}
	}
	on := render(64)
	for _, s := range []string{"ftl.journal_pages", "ftl.ckpt_pages"} {
		if !strings.Contains(on, s) {
			t.Fatalf("durable-on report missing %q", s)
		}
	}
}

// Command replay drives a captured block trace (as written by tracegen)
// through a chosen device configuration — the NANDFlashSim workflow of §4.2:
// "since these traces are at the device-level, they may be directly fed to
// the simulator."
package main

import (
	"flag"
	"fmt"
	"os"

	"oocnvm/internal/experiment"
	"oocnvm/internal/ftl"
	"oocnvm/internal/nvm"
	"oocnvm/internal/ssd"
	"oocnvm/internal/trace"
)

func main() {
	var (
		file     = flag.String("trace", "", "block trace file (binary or JSON)")
		asJSON   = flag.Bool("json", false, "trace file is JSON")
		cfgName  = flag.String("config", "CNL-UFS", "Table 2 configuration to replay on")
		cellName = flag.String("cell", "SLC", "NVM type: SLC, MLC, TLC, PCM")
		qd       = flag.Int("qd", 32, "queue depth")
		window   = flag.Int64("window", 0, "in-flight byte window in KiB (0 = unlimited)")
		paqDepth = flag.Int("paq", 0, "physically-addressed-queueing window (0 = FIFO)")
		cache    = flag.Bool("cachemode", false, "enable dual-register cache operation")
		seed     = flag.Uint64("seed", 42, "seed")
	)
	flag.Parse()
	if err := run(*file, *asJSON, *cfgName, *cellName, *qd, *window, *paqDepth, *cache, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

func run(file string, asJSON bool, cfgName, cellName string, qd int, windowKiB int64, paqDepth int, cache bool, seed uint64) error {
	if file == "" {
		return fmt.Errorf("-trace is required (capture one with tracegen)")
	}
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	var ops []trace.BlockOp
	if asJSON {
		ops, err = trace.DecodeBlockJSON(f)
	} else {
		ops, err = trace.ReadBlockTrace(f)
	}
	if err != nil {
		return err
	}

	var cell nvm.CellType
	switch cellName {
	case "SLC":
		cell = nvm.SLC
	case "MLC":
		cell = nvm.MLC
	case "TLC":
		cell = nvm.TLC
	case "PCM":
		cell = nvm.PCM
	default:
		return fmt.Errorf("unknown cell type %q", cellName)
	}
	cfg, err := experiment.FindConfig(cfgName)
	if err != nil {
		return err
	}

	geo := nvm.PaperGeometry()
	cp := nvm.Params(cell)
	var translator ssd.Translator
	if cfg.Kind == experiment.FSUFS {
		translator = ssd.Direct{Geo: geo, Cell: cp}
	} else {
		ft, err := ftl.New(geo, cp, ftl.Config{})
		if err != nil {
			return err
		}
		translator = ft
	}
	link := cfg.BuildLink()
	drive, err := ssd.New(ssd.Config{
		Geometry:    geo,
		Cell:        cp,
		Bus:         cfg.Bus,
		Link:        link,
		Translator:  translator,
		QueueDepth:  qd,
		WindowBytes: windowKiB << 10,
		CacheMode:   cache,
		Seed:        seed,
	})
	if err != nil {
		return err
	}

	st := trace.Characterize(ops)
	fmt.Printf("trace: %d ops, %d MiB (%d MiB data), mean request %.1f KiB, %.0f%% sequential\n",
		st.Ops, st.Bytes>>20, st.DataBytes>>20, st.MeanSize/1024, 100*st.SequentialPct)

	var res ssd.Result
	if paqDepth > 1 {
		res = ssd.NewPAQ(drive, paqDepth).Replay(ops)
	} else {
		res = drive.Replay(ops)
	}
	lat := drive.Dev.Latency()

	fmt.Printf("config: %s on %s (%s, %s)\n", cfg.Name, cell, cfg.PCIe, cfg.Bus.Name)
	fmt.Printf("elapsed:   %v\n", res.Elapsed)
	fmt.Printf("bandwidth: %.1f MB/s\n", res.MBps())
	fmt.Printf("latency:   p50 %v  p95 %v  p99 %v  max %v\n", lat.P50, lat.P95, lat.P99, lat.Max)
	fmt.Printf("channel util %.1f%%  package util %.1f%%  bus occupancy %.1f%%\n",
		100*res.Stats.ChannelUtilization, 100*res.Stats.PackageUtilization, 100*res.Stats.BusOccupancy)
	p := res.Stats.Breakdown.Percentages()
	for i, label := range nvm.BreakdownLabels {
		fmt.Printf("  %-22s %5.1f%%\n", label, 100*p[i])
	}
	return nil
}

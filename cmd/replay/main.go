// Command replay drives a captured block trace (as written by tracegen)
// through a chosen device configuration — the NANDFlashSim workflow of §4.2:
// "since these traces are at the device-level, they may be directly fed to
// the simulator."
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"oocnvm/internal/cluster"
	"oocnvm/internal/experiment"
	"oocnvm/internal/fault"
	"oocnvm/internal/ftl"
	"oocnvm/internal/netfault"
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs/export"
	"oocnvm/internal/obs/report"
	"oocnvm/internal/ssd"
	"oocnvm/internal/trace"
)

type options struct {
	file          string
	asJSON        bool
	cfgName       string
	cellName      string
	qd            int
	windowKiB     int64
	paqDepth      int
	cache         bool
	seed          uint64
	exp           export.Flags
	faultProfile  string
	netProfile    string
	retentionDays float64
	precycle      int64
	spares        int64
	durableCkpt   int64
}

func main() {
	var o options
	flag.StringVar(&o.file, "trace", "", "block trace file (binary or JSON)")
	flag.BoolVar(&o.asJSON, "json", false, "trace file is JSON")
	flag.StringVar(&o.cfgName, "config", "CNL-UFS", "Table 2 configuration to replay on")
	flag.StringVar(&o.cellName, "cell", "SLC", "NVM type: SLC, MLC, TLC, PCM")
	flag.IntVar(&o.qd, "qd", 32, "queue depth")
	flag.Int64Var(&o.windowKiB, "window", 0, "in-flight byte window in KiB (0 = unlimited)")
	flag.IntVar(&o.paqDepth, "paq", 0, "physically-addressed-queueing window (0 = FIFO)")
	flag.BoolVar(&o.cache, "cachemode", false, "enable dual-register cache operation")
	flag.Uint64Var(&o.seed, "seed", 42, "seed")
	o.exp.Register(flag.CommandLine)
	flag.StringVar(&o.faultProfile, "fault-profile", "none", "reliability profile: none, fresh, worn, eol")
	export.RegisterNetProfile(flag.CommandLine, &o.netProfile)
	flag.Float64Var(&o.retentionDays, "retention-days", 0, "age all data by this many days of retention")
	flag.Int64Var(&o.precycle, "precycle", 0, "pre-age every block by this many P/E cycles")
	flag.Int64Var(&o.spares, "spares", 0, "spare-block budget before read-only degradation (0 = default)")
	flag.Int64Var(&o.durableCkpt, "durable-ckpt", 0, "FTL durable-metadata mode: checkpoint the mapping table every N host pages (0 = off)")
	flag.Parse()
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

func run(o options, w io.Writer) (retErr error) {
	if o.file == "" {
		return fmt.Errorf("-trace is required (capture one with tracegen)")
	}
	stopProf, err := o.exp.StartProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()
	// Host-cost collection starts before the first phase so trace loading,
	// staging and the replay each land in their own row of the table.
	host := o.exp.Host()
	endLoad := host.Phase("load-trace")
	f, err := os.Open(o.file)
	if err != nil {
		return err
	}
	defer f.Close()
	var ops []trace.BlockOp
	if o.asJSON {
		ops, err = trace.DecodeBlockJSON(f)
	} else {
		ops, err = trace.ReadBlockTrace(f)
	}
	endLoad()
	if err != nil {
		return err
	}

	var cell nvm.CellType
	switch o.cellName {
	case "SLC":
		cell = nvm.SLC
	case "MLC":
		cell = nvm.MLC
	case "TLC":
		cell = nvm.TLC
	case "PCM":
		cell = nvm.PCM
	default:
		return fmt.Errorf("unknown cell type %q", o.cellName)
	}
	cfg, err := experiment.FindConfig(o.cfgName)
	if err != nil {
		return err
	}

	geo := nvm.PaperGeometry()
	cp := nvm.Params(cell)
	var translator ssd.Translator
	if cfg.Kind == experiment.FSUFS {
		translator = ssd.NewDirect(geo, cp)
	} else {
		var dc ftl.DurableConfig
		if o.durableCkpt > 0 {
			dc = ftl.DurableConfig{Enabled: true, CheckpointEveryPages: o.durableCkpt}
		}
		ft, err := ftl.New(geo, cp, ftl.Config{Durable: dc})
		if err != nil {
			return err
		}
		translator = ft
	}

	// Observability is collected only when an export was requested; the
	// stack runs with free no-op probes otherwise.
	col := o.exp.Collector()
	samp := o.exp.Sampler()
	rec := o.exp.Recorder(col)

	link := cfg.BuildLink()
	sc := ssd.Config{
		Geometry:    geo,
		Cell:        cp,
		Bus:         cfg.Bus,
		Link:        link,
		Translator:  translator,
		QueueDepth:  o.qd,
		WindowBytes: o.windowKiB << 10,
		CacheMode:   o.cache,
		Seed:        o.seed,
		Sampler:     samp,
		Attrib:      rec,
	}
	if col != nil {
		sc.Probe = col
	}
	if o.faultProfile == "" {
		o.faultProfile = "none"
	}
	prof, err := fault.ForName(o.faultProfile)
	if err != nil {
		return err
	}
	if prof.Enabled() || o.retentionDays > 0 || o.precycle > 0 {
		fc := nvm.FaultConfig(geo, cp, prof, o.seed)
		fc.RetentionDays = o.retentionDays
		fc.PrecyclePE = o.precycle
		fc.SpareBlocks = o.spares
		inj, err := fault.New(fc)
		if err != nil {
			return err
		}
		sc.Fault = inj
	}
	drive, err := ssd.New(sc)
	if err != nil {
		return err
	}

	st := trace.Characterize(ops)
	fmt.Fprintf(w, "trace: %d ops, %d MiB (%d MiB data), mean request %.1f KiB, %.0f%% sequential\n",
		st.Ops, st.Bytes>>20, st.DataBytes>>20, st.MeanSize/1024, 100*st.SequentialPct)

	// With -net-profile, the dataset is first staged onto the compute-local
	// SSD across a degraded cluster fabric (the §3.1 preload under faults);
	// the default clean fabric skips the staging so existing replay output
	// stays byte-identical.
	if o.netProfile == "" {
		o.netProfile = "none"
	}
	if o.netProfile != "none" {
		endStage := host.Phase("staging")
		nprof, err := netfault.ForName(o.netProfile)
		if err != nil {
			endStage()
			return err
		}
		dataset := st.Bytes
		if dataset <= 0 {
			dataset = 64 << 20
		}
		pres, err := cluster.PreloadDegraded(cluster.ComputeLocal(), cluster.PreloadPlan{
			DatasetBytes: dataset,
		}, cluster.DegradedOptions{Profile: nprof, Seed: o.seed})
		endStage()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "staging (net profile %s): %v\n", o.netProfile, pres.Transfer)
	}

	endReplay := host.Phase("replay")
	var res ssd.Result
	if o.paqDepth > 1 {
		res = ssd.NewPAQ(drive, o.paqDepth).Replay(ops)
	} else {
		res = drive.Replay(ops)
	}
	endReplay()
	lat := drive.Dev.Latency()

	fmt.Fprintf(w, "config: %s on %s (%s, %s)\n", cfg.Name, cell, cfg.PCIe, cfg.Bus.Name)
	fmt.Fprint(w, res)
	fmt.Fprintf(w, "latency: p50 %v  p95 %v  p99 %v  max %v\n", lat.P50, lat.P95, lat.P99, lat.Max)
	if sc.Fault != nil {
		fmt.Fprintf(w, "fault profile: %s (retention %.0f days, precycle %d PE)\n",
			o.faultProfile, sc.Fault.Profile().RetentionDays, o.precycle)
		fmt.Fprint(w, res.Faults)
		if err := drive.Err(); err != nil {
			fmt.Fprintf(w, "first error: %v\n", err)
		}
	}

	if col != nil {
		col.Reg.Absorb(drive.Dev.Registry())
	}
	if o.exp.Enabled() || host != nil {
		info := report.RunInfo{
			Title: fmt.Sprintf("replay %s on %s/%s", o.file, cfg.Name, cell),
			Params: [][2]string{
				{"trace", o.file},
				{"config", cfg.Name},
				{"cell", cell.String()},
				{"pcie", cfg.PCIe.String()},
				{"bus", cfg.Bus.Name},
				{"queue depth", fmt.Sprint(o.qd)},
				{"window KiB", fmt.Sprint(o.windowKiB)},
				{"seed", fmt.Sprint(o.seed)},
				{"fault profile", o.faultProfile},
				{"net profile", o.netProfile},
			},
		}
		if sc.Fault != nil {
			info.FaultSummary = res.Faults.String()
		}
		if err := o.exp.Write(w, col, samp, rec, host, info); err != nil {
			return err
		}
	}
	return nil
}

// Command nvmsim drives the NVM device model directly with synthetic
// workloads — the standalone equivalent of the paper's NANDFlashSim runs.
// It reports bandwidth, the six-state execution breakdown, PAL parallelism,
// and channel/package utilization for one device configuration.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"oocnvm/internal/interconnect"
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs/export"
	"oocnvm/internal/obs/report"
	"oocnvm/internal/sim"
	"oocnvm/internal/ssd"
	"oocnvm/internal/trace"
)

func main() {
	var (
		cellName = flag.String("cell", "SLC", "NVM type: SLC, MLC, TLC, PCM")
		busName  = flag.String("bus", "sdr", "channel bus: sdr (ONFi3 400MHz) or ddr (future 800MHz)")
		gen      = flag.Int("pcie", 2, "PCIe generation: 2 or 3")
		lanes    = flag.Int("lanes", 8, "PCIe lanes")
		bridged  = flag.Bool("bridged", true, "SATA-bridged controller architecture")
		pattern  = flag.String("pattern", "seq", "access pattern: seq or rand")
		kind     = flag.String("op", "read", "operation: read or write")
		reqKiB   = flag.Int64("req", 8192, "request size in KiB")
		count    = flag.Int("n", 64, "number of requests")
		window   = flag.Int64("window", 0, "in-flight byte window in KiB (0 = queue-depth bound)")
		qd       = flag.Int("qd", 32, "queue depth")
		seed     = flag.Uint64("seed", 1, "seed")
		exp      export.Flags
	)
	exp.Register(flag.CommandLine)
	flag.Parse()
	if err := run(*cellName, *busName, *gen, *lanes, *bridged, *pattern, *kind, *reqKiB, *count, *window, *qd, *seed, exp, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nvmsim:", err)
		os.Exit(1)
	}
}

func run(cellName, busName string, gen, lanes int, bridged bool, pattern, kind string, reqKiB int64, count int, windowKiB int64, qd int, seed uint64, exp export.Flags, out io.Writer) (retErr error) {
	stopProf, err := exp.StartProfiles()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()
	var cell nvm.CellType
	switch cellName {
	case "SLC":
		cell = nvm.SLC
	case "MLC":
		cell = nvm.MLC
	case "TLC":
		cell = nvm.TLC
	case "PCM":
		cell = nvm.PCM
	default:
		return fmt.Errorf("unknown cell type %q", cellName)
	}
	var bus nvm.BusParams
	switch busName {
	case "sdr":
		bus = nvm.ONFi3SDR()
	case "ddr":
		bus = nvm.FutureDDR()
	default:
		return fmt.Errorf("unknown bus %q", busName)
	}
	pg := interconnect.PCIeGen2
	if gen == 3 {
		pg = interconnect.PCIeGen3
	}
	pcie := interconnect.PCIeConfig{Gen: pg, Lanes: lanes, Bridged: bridged}

	geo := nvm.PaperGeometry()
	cp := nvm.Params(cell)
	col := exp.Collector()
	samp := exp.Sampler()
	rec := exp.Recorder(col)
	host := exp.Host()
	sc := ssd.Config{
		Geometry:    geo,
		Cell:        cp,
		Bus:         bus,
		Link:        interconnect.NewPCIeLine(pcie),
		Translator:  ssd.NewDirect(geo, cp),
		QueueDepth:  qd,
		WindowBytes: windowKiB << 10,
		Seed:        seed,
		Sampler:     samp,
		Attrib:      rec,
	}
	if col != nil {
		sc.Probe = col
	}
	drive, err := ssd.New(sc)
	if err != nil {
		return err
	}

	opKind := trace.Read
	if kind == "write" {
		opKind = trace.Write
	}
	rng := sim.NewRNG(seed)
	capacity := geo.Capacity(cp)
	req := reqKiB << 10
	var ops []trace.BlockOp
	off := int64(0)
	for i := 0; i < count; i++ {
		if pattern == "rand" {
			off = rng.Int63n(capacity/req) * req
		}
		ops = append(ops, trace.BlockOp{Kind: opKind, Offset: off % capacity, Size: req})
		if pattern == "seq" {
			off += req
		}
	}
	endReplay := host.Phase("replay")
	res := drive.Replay(ops)
	endReplay()

	fmt.Fprintf(out, "device: %s, %s, %s, %d ch x %d pkg x %d dies, %d planes/die\n",
		cell, bus.Name, pcie, geo.Channels, geo.Packages(), geo.Dies(), cp.Planes)
	fmt.Fprintf(out, "workload: %d x %d KiB %s %s\n", count, reqKiB, pattern, kind)
	fmt.Fprintf(out, "elapsed:   %v\n", res.Elapsed)
	fmt.Fprintf(out, "bandwidth: %.1f MB/s\n", res.MBps())
	fmt.Fprintf(out, "channel utilization: %.1f%%   package utilization: %.1f%%   bus occupancy: %.1f%%\n",
		100*res.Stats.ChannelUtilization, 100*res.Stats.PackageUtilization, 100*res.Stats.BusOccupancy)
	p := res.Stats.Breakdown.Percentages()
	for i, label := range nvm.BreakdownLabels {
		fmt.Fprintf(out, "  %-22s %5.1f%%\n", label, 100*p[i])
	}
	fr := res.Stats.PAL.Fractions()
	fmt.Fprintf(out, "parallelism: PAL1 %.1f%%  PAL2 %.1f%%  PAL3 %.1f%%  PAL4 %.1f%%\n",
		100*fr[0], 100*fr[1], 100*fr[2], 100*fr[3])

	if col != nil {
		col.Reg.Absorb(drive.Dev.Registry())
	}
	if exp.Enabled() || host != nil {
		info := report.RunInfo{
			Title: fmt.Sprintf("nvmsim %s %s %s", cell, pattern, kind),
			Params: [][2]string{
				{"cell", cell.String()},
				{"bus", bus.Name},
				{"pcie", pcie.String()},
				{"pattern", pattern},
				{"op", kind},
				{"request KiB", fmt.Sprint(reqKiB)},
				{"requests", fmt.Sprint(count)},
				{"queue depth", fmt.Sprint(qd)},
				{"seed", fmt.Sprint(seed)},
			},
		}
		if err := exp.Write(out, col, samp, rec, host, info); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"bytes"
	"strings"
	"testing"

	"oocnvm/internal/obs/export"
)

func TestNvmsimSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run("MLC", "sdr", 2, 8, true, "seq", "read", 256, 4, 0, 32, 1, export.Flags{}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{
		"device: MLC",
		"workload: 4 x 256 KiB seq read",
		"bandwidth:",
		"parallelism: PAL1",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestNvmsimWritePattern(t *testing.T) {
	var out bytes.Buffer
	if err := run("PCM", "ddr", 3, 16, false, "rand", "write", 64, 4, 0, 8, 7, export.Flags{}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "workload: 4 x 64 KiB rand write") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestNvmsimRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run("QLC", "sdr", 2, 8, true, "seq", "read", 64, 1, 0, 8, 1, export.Flags{}, &out); err == nil {
		t.Fatal("unknown cell accepted")
	}
	if err := run("SLC", "qdr", 2, 8, true, "seq", "read", 64, 1, 0, 8, 1, export.Flags{}, &out); err == nil {
		t.Fatal("unknown bus accepted")
	}
}

package oocnvm_test

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§4) and the ablations called out in DESIGN.md §5. Figures are
// reported through b.ReportMetric as MB/s (or %, x) per configuration, so
//
//	go test -bench=. -benchmem
//
// prints the reproduced results alongside the harness cost. Whole-figure
// benchmarks take seconds per run; the default -benchtime therefore executes
// them once.

import (
	"fmt"
	"testing"

	"oocnvm/internal/cluster"
	"oocnvm/internal/dooc"
	"oocnvm/internal/energy"
	"oocnvm/internal/experiment"
	"oocnvm/internal/fs"
	"oocnvm/internal/interconnect"
	"oocnvm/internal/linalg"
	"oocnvm/internal/nvm"
	"oocnvm/internal/obs/hostperf"
	"oocnvm/internal/obs/timeseries"
	"oocnvm/internal/ooc"
	"oocnvm/internal/sim"
	"oocnvm/internal/ssd"
	"oocnvm/internal/trace"
	"oocnvm/internal/trend"
)

// benchOptions is the evaluation scale used by the figure benchmarks:
// large enough for steady state, small enough to run in seconds.
func benchOptions() experiment.Options {
	opt := experiment.DefaultOptions()
	opt.Workload = ooc.Workload{MatrixBytes: 96 << 20, PanelBytes: 8 << 20, Applications: 2}
	return opt
}

func reportMatrix(b *testing.B, ms []experiment.Measurement, metric func(experiment.Measurement) float64, unit string) {
	b.Helper()
	for _, m := range ms {
		b.ReportMetric(metric(m), fmt.Sprintf("%s/%s_%s", unit, m.Config.Name, m.Cell))
	}
}

// --- Table 1 / Figure 1 ------------------------------------------------------

// BenchmarkTable1CellLatencies measures one page read per NVM type through
// the device model, pinning the Table 1 latency ladder.
func BenchmarkTable1CellLatencies(b *testing.B) {
	for _, cell := range nvm.CellTypes {
		b.Run(cell.String(), func(b *testing.B) {
			cp := nvm.Params(cell)
			dev, err := nvm.NewDevice(nvm.PaperGeometry(), cp, nvm.ONFi3SDR(), interconnect.Infinite{}, 1)
			if err != nil {
				b.Fatal(err)
			}
			var at int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dev.Submit(0, []nvm.PageOp{{Op: nvm.OpRead, Loc: dev.Geo.MapLogical(at, cp.Planes)}})
				at++
			}
			b.ReportMetric(cp.ReadLatency.Micros(), "tR_us")
		})
	}
}

// BenchmarkFig1TrendFit regenerates the Figure 1 growth fits and crossover.
func BenchmarkFig1TrendFit(b *testing.B) {
	var year float64
	for i := 0; i < b.N; i++ {
		pts := trend.Points()
		ib, err := trend.FitCategory(pts, trend.InfiniBand)
		if err != nil {
			b.Fatal(err)
		}
		fl, err := trend.FitCategory(pts, trend.FlashSSD)
		if err != nil {
			b.Fatal(err)
		}
		year, err = trend.Crossover(ib, fl)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(year, "crossover_year")
}

// --- Figure 6 ---------------------------------------------------------------

// BenchmarkFig6TraceMutation regenerates the POSIX vs sub-GPFS access
// patterns and reports their sequentiality.
func BenchmarkFig6TraceMutation(b *testing.B) {
	var posixSeq, gpfsSeq float64
	for i := 0; i < b.N; i++ {
		var err error
		posixSeq, gpfsSeq, err = experiment.Fig6Pattern(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*posixSeq, "%seq_posix")
	b.ReportMetric(100*gpfsSeq, "%seq_gpfs")
}

// --- Figures 7-10 -------------------------------------------------------------

// BenchmarkFig7aBandwidth regenerates the achieved-bandwidth comparison of
// ION-GPFS, the eight local file systems, and UFS over all four NVM types.
func BenchmarkFig7aBandwidth(b *testing.B) {
	var ms []experiment.Measurement
	opt := benchOptions()
	opt.MeasureRemaining = false
	for i := 0; i < b.N; i++ {
		var err error
		ms, err = experiment.Matrix(experiment.FileSystemConfigs(), nvm.CellTypes, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMatrix(b, ms, experiment.Measurement.AchievedMBps, "MBps")
}

// BenchmarkFig7bRemaining regenerates the bandwidth-remaining chart.
func BenchmarkFig7bRemaining(b *testing.B) {
	var ms []experiment.Measurement
	for i := 0; i < b.N; i++ {
		var err error
		ms, err = experiment.Matrix(experiment.FileSystemConfigs(), nvm.CellTypes, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMatrix(b, ms, experiment.Measurement.RemainingMBps, "restMBps")
}

// BenchmarkFig8aDeviceLadder regenerates the hardware exploration.
func BenchmarkFig8aDeviceLadder(b *testing.B) {
	var ms []experiment.Measurement
	opt := benchOptions()
	opt.MeasureRemaining = false
	for i := 0; i < b.N; i++ {
		var err error
		ms, err = experiment.Matrix(experiment.DeviceConfigs(), nvm.CellTypes, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMatrix(b, ms, experiment.Measurement.AchievedMBps, "MBps")
}

// BenchmarkFig8bRemaining regenerates the ladder's left-over capability.
func BenchmarkFig8bRemaining(b *testing.B) {
	var ms []experiment.Measurement
	for i := 0; i < b.N; i++ {
		var err error
		ms, err = experiment.Matrix(experiment.DeviceConfigs(), nvm.CellTypes, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMatrix(b, ms, experiment.Measurement.RemainingMBps, "restMBps")
}

// BenchmarkFig9aChannelUtil regenerates channel-level utilization.
func BenchmarkFig9aChannelUtil(b *testing.B) {
	benchUtil(b, func(m experiment.Measurement) float64 {
		return 100 * m.Achieved.Stats.ChannelUtilization
	}, "%chan")
}

// BenchmarkFig9bPackageUtil regenerates package-level utilization.
func BenchmarkFig9bPackageUtil(b *testing.B) {
	benchUtil(b, func(m experiment.Measurement) float64 {
		return 100 * m.Achieved.Stats.PackageUtilization
	}, "%pkg")
}

func benchUtil(b *testing.B, metric func(experiment.Measurement) float64, unit string) {
	b.Helper()
	var ms []experiment.Measurement
	opt := benchOptions()
	opt.MeasureRemaining = false
	for i := 0; i < b.N; i++ {
		var err error
		ms, err = experiment.Matrix(experiment.Table2(), nvm.CellTypes, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportMatrix(b, ms, metric, unit)
}

// BenchmarkFig10Breakdown regenerates the execution-time decomposition for
// the two media the paper charts (10a: TLC, 10c: PCM), reporting the two
// headline states per configuration.
func BenchmarkFig10Breakdown(b *testing.B) {
	for _, cell := range []nvm.CellType{nvm.TLC, nvm.PCM} {
		b.Run(cell.String(), func(b *testing.B) {
			var ms []experiment.Measurement
			opt := benchOptions()
			opt.MeasureRemaining = false
			for i := 0; i < b.N; i++ {
				var err error
				ms, err = experiment.Matrix(experiment.Table2(), []nvm.CellType{cell}, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, m := range ms {
				p := m.Achieved.Stats.Breakdown.Percentages()
				b.ReportMetric(100*p[0], "%dma/"+m.Config.Name)
				b.ReportMetric(100*(p[3]+p[5]), "%cell/"+m.Config.Name)
			}
		})
	}
}

// BenchmarkFig10Parallelism regenerates the PAL decomposition (10b: TLC,
// 10d: PCM), reporting the fully parallel share per configuration.
func BenchmarkFig10Parallelism(b *testing.B) {
	for _, cell := range []nvm.CellType{nvm.TLC, nvm.PCM} {
		b.Run(cell.String(), func(b *testing.B) {
			var ms []experiment.Measurement
			opt := benchOptions()
			opt.MeasureRemaining = false
			for i := 0; i < b.N; i++ {
				var err error
				ms, err = experiment.Matrix(experiment.Table2(), []nvm.CellType{cell}, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, m := range ms {
				fr := m.Achieved.Stats.PAL.Fractions()
				b.ReportMetric(100*(fr[1]+fr[3]), "%interleaved/"+m.Config.Name)
				b.ReportMetric(100*fr[3], "%pal4/"+m.Config.Name)
			}
		})
	}
}

// BenchmarkSummaryHeadlines regenerates the §7 headline ratios.
func BenchmarkSummaryHeadlines(b *testing.B) {
	var s experiment.Summary
	opt := benchOptions()
	opt.MeasureRemaining = false
	for i := 0; i < b.N; i++ {
		ms, err := experiment.Matrix(experiment.Table2(), nvm.CellTypes, opt)
		if err != nil {
			b.Fatal(err)
		}
		s, err = experiment.Summarize(ms, nvm.CellTypes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*s.CNLOverION, "%cnl_over_ion")
	b.ReportMetric(100*s.UFSOverCNL, "%ufs_over_cnl")
	b.ReportMetric(100*s.HWOverUFS, "%hw_over_ufs")
	b.ReportMetric(s.MeanTotalOverION, "x_total")
	b.ReportMetric(s.TotalOverION[nvm.TLC], "x_tlc")
	b.ReportMetric(s.TotalOverION[nvm.PCM], "x_pcm")
}

// --- Ablations (DESIGN.md §5) -------------------------------------------------

func runOne(b *testing.B, cfg experiment.Config, cell nvm.CellType, opt experiment.Options) experiment.Measurement {
	b.Helper()
	m, err := experiment.Run(cfg, cell, opt)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkAblationMultiplane quantifies multi-plane merging: the same SLC
// die population with and without plane pairing, on the DDR bus where the
// media (not the bus) is the limit, measured end to end through the SSD.
func BenchmarkAblationMultiplane(b *testing.B) {
	run := func(planes int) float64 {
		cp := nvm.Params(nvm.SLC)
		cp.Planes = planes
		geo := nvm.PaperGeometry()
		drive, err := ssd.New(ssd.Config{
			Geometry: geo, Cell: cp, Bus: nvm.FutureDDR(),
			Link:       interconnect.Infinite{},
			Translator: ssd.NewDirect(geo, cp),
			Seed:       1,
		})
		if err != nil {
			b.Fatal(err)
		}
		var res ssd.Result
		for off := int64(0); off < 96<<20; off += 8 << 20 {
			drive.Submit(traceRead(off, 8<<20))
		}
		res = drive.Finish()
		return res.MBps()
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(2)
		without = run(1)
	}
	b.ReportMetric(with, "MBps_planes2")
	b.ReportMetric(without, "MBps_planes1")
}

// BenchmarkAblationSyncMetadata isolates the §3.2 "drawback 2": the same
// ext2 profile with and without synchronous metadata barriers.
func BenchmarkAblationSyncMetadata(b *testing.B) {
	opt := benchOptions()
	opt.MeasureRemaining = false
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = runOne(b, experiment.CNL(fs.Ext2()), nvm.TLC, opt).AchievedMBps()
		clean := fs.Ext2()
		clean.Name = "EXT2-NOMETA"
		clean.MetaBytes = 0
		without = runOne(b, experiment.CNL(clean), nvm.TLC, opt).AchievedMBps()
	}
	b.ReportMetric(with, "MBps_withMeta")
	b.ReportMetric(without, "MBps_noMeta")
}

// BenchmarkAblationGPFSStripeUnit sweeps the stripe unit: "larger stripes
// combat this randomizing trend, but only to limited extents" (§4.2).
func BenchmarkAblationGPFSStripeUnit(b *testing.B) {
	opt := benchOptions()
	opt.MeasureRemaining = false
	units := []int64{256 << 10, 1 << 20, 4 << 20}
	results := make([]float64, len(units))
	for i := 0; i < b.N; i++ {
		for j, u := range units {
			cfg := experiment.IONGPFS()
			cfg.GPFS.StripeUnit = u
			results[j] = runOne(b, cfg, nvm.SLC, opt).AchievedMBps()
		}
	}
	for j, u := range units {
		b.ReportMetric(results[j], fmt.Sprintf("MBps_stripe%dKiB", u>>10))
	}
}

// BenchmarkAblationQueueDepth sweeps the host queue depth on the UFS stack.
func BenchmarkAblationQueueDepth(b *testing.B) {
	depths := []int{1, 4, 32}
	results := make([]float64, len(depths))
	for i := 0; i < b.N; i++ {
		for j, qd := range depths {
			opt := benchOptions()
			opt.MeasureRemaining = false
			opt.QueueDepth = qd
			results[j] = runOne(b, experiment.CNLUFS(), nvm.TLC, opt).AchievedMBps()
		}
	}
	for j, qd := range depths {
		b.ReportMetric(results[j], fmt.Sprintf("MBps_qd%d", qd))
	}
}

// BenchmarkAblationRequestCap sweeps the coalescing limit at a fixed
// readahead window — why preserving request size matters (the UFS argument).
func BenchmarkAblationRequestCap(b *testing.B) {
	caps := []int64{64 << 10, 512 << 10, 8 << 20}
	results := make([]float64, len(caps))
	opt := benchOptions()
	opt.MeasureRemaining = false
	for i := 0; i < b.N; i++ {
		for j, c := range caps {
			p := fs.Profile{Name: "CAP", BlockSize: 4096, MaxRequest: c, ReadAheadBytes: 1 << 20}
			results[j] = runOne(b, experiment.CNL(p), nvm.TLC, opt).AchievedMBps()
		}
	}
	for j, c := range caps {
		b.ReportMetric(results[j], fmt.Sprintf("MBps_cap%dKiB", c>>10))
	}
}

// BenchmarkAblationReadahead sweeps the in-flight window — the ext4-L knob.
func BenchmarkAblationReadahead(b *testing.B) {
	windows := []int64{256 << 10, 1 << 20, 8 << 20}
	results := make([]float64, len(windows))
	opt := benchOptions()
	opt.MeasureRemaining = false
	for i := 0; i < b.N; i++ {
		for j, w := range windows {
			p := fs.Ext4()
			p.Name = "RA"
			p.ReadAheadBytes = w
			results[j] = runOne(b, experiment.CNL(p), nvm.TLC, opt).AchievedMBps()
		}
	}
	for j, w := range windows {
		b.ReportMetric(results[j], fmt.Sprintf("MBps_ra%dKiB", w>>10))
	}
}

// BenchmarkAblationPrefetch measures the DOoC pool's prefetching: cold
// demand misses versus a prefetched wave.
func BenchmarkAblationPrefetch(b *testing.B) {
	mk := func() (*dooc.DataPool, *int64) {
		var loads int64
		p, err := dooc.NewDataPool(1<<20, func(string) ([]byte, error) {
			loads++
			return make([]byte, 4096), nil
		})
		if err != nil {
			b.Fatal(err)
		}
		return p, &loads
	}
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("panel%d", i)
	}
	var coldHits, warmHits int64
	for i := 0; i < b.N; i++ {
		cold, _ := mk()
		for _, n := range names {
			cold.Get(n)
		}
		h, _, _ := cold.Stats()
		coldHits = h

		warm, _ := mk()
		warm.Prefetch(names...)()
		for _, n := range names {
			warm.Get(n)
		}
		h2, _, _ := warm.Stats()
		warmHits = h2
	}
	b.ReportMetric(float64(coldHits), "hits_cold")
	b.ReportMetric(float64(warmHits), "hits_prefetched")
}

// --- Engine microbenchmarks ----------------------------------------------------

// BenchmarkSimulatorPageThroughput measures the simulator's own speed: how
// many simulated page operations the engine schedules per wall second.
func BenchmarkSimulatorPageThroughput(b *testing.B) {
	geo := nvm.PaperGeometry()
	cp := nvm.Params(nvm.SLC)
	drive, err := ssd.New(ssd.Config{
		Geometry: geo, Cell: cp, Bus: nvm.ONFi3SDR(),
		Link:       interconnect.Infinite{},
		Translator: ssd.NewDirect(geo, cp),
		Seed:       1,
	})
	if err != nil {
		b.Fatal(err)
	}
	const req = 1 << 20
	b.SetBytes(req)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drive.Submit(traceRead(int64(i)*req, req))
	}
}

func traceRead(off, size int64) trace.BlockOp {
	return trace.BlockOp{Kind: trace.Read, Offset: off, Size: size}
}

// BenchmarkTelemetrySampling measures the cost of the report sampler on the
// replay hot path. The "off" case is the default nil-sampler configuration and
// must track BenchmarkSimulatorPageThroughput (a nil check per Submit is the
// whole overhead); "on" pays for the periodic source sweeps.
func BenchmarkTelemetrySampling(b *testing.B) {
	geo := nvm.PaperGeometry()
	cp := nvm.Params(nvm.SLC)
	mk := func(samp *timeseries.Sampler) *ssd.SSD {
		drive, err := ssd.New(ssd.Config{
			Geometry: geo, Cell: cp, Bus: nvm.ONFi3SDR(),
			Link:       interconnect.Infinite{},
			Translator: ssd.NewDirect(geo, cp),
			Seed:       1,
			Sampler:    samp,
		})
		if err != nil {
			b.Fatal(err)
		}
		return drive
	}
	const req = 1 << 20
	for _, bc := range []struct {
		name string
		samp func() *timeseries.Sampler
	}{
		{"off", func() *timeseries.Sampler { return nil }},
		{"on", func() *timeseries.Sampler {
			return timeseries.NewSampler(100*sim.Microsecond, 256)
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			drive := mk(bc.samp())
			b.SetBytes(req)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drive.Submit(traceRead(int64(i)*req, req))
			}
		})
	}
}

// BenchmarkHostPerfProbes measures the replay hot path with the hostperf
// allocation-attribution probes off (the default: one atomic load per probe)
// and on (a runtime/metrics read per region boundary). The "off" case must
// track BenchmarkSimulatorPageThroughput — shipping the probes may not tax
// runs that never ask for host-cost measurement.
func BenchmarkHostPerfProbes(b *testing.B) {
	geo := nvm.PaperGeometry()
	cp := nvm.Params(nvm.SLC)
	const req = 1 << 20
	for _, bc := range []struct {
		name    string
		enabled bool
	}{{"off", false}, {"on", true}} {
		b.Run(bc.name, func(b *testing.B) {
			drive, err := ssd.New(ssd.Config{
				Geometry: geo, Cell: cp, Bus: nvm.ONFi3SDR(),
				Link:       interconnect.Infinite{},
				Translator: ssd.NewDirect(geo, cp),
				Seed:       1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if bc.enabled {
				hostperf.EnableAttrib()
				defer hostperf.DisableAttrib()
			} else {
				hostperf.DisableAttrib()
			}
			b.SetBytes(req)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drive.Submit(traceRead(int64(i)*req, req))
			}
		})
	}
}

// BenchmarkSpMM measures the numerical kernel of the workload.
func BenchmarkSpMM(b *testing.B) {
	h, err := ooc.Hamiltonian(ooc.DefaultHamiltonian(5000))
	if err != nil {
		b.Fatal(err)
	}
	x := linalg.NewMatrix(5000, 16)
	for i := range x.Data {
		x.Data[i] = float64(i%17) - 8
	}
	b.SetBytes(h.NNZ() * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Mul(x)
	}
}

// BenchmarkLOBPCGSolve measures a full small-scale eigensolve. Beyond the
// time-per-op, it reports how hard the solver worked: iterations to
// convergence and the worst final residual, so the continuous-bench history
// catches numerical regressions (a change that converges slower or less
// tightly) even when wall time hides them.
func BenchmarkLOBPCGSolve(b *testing.B) {
	h, err := ooc.Hamiltonian(ooc.DefaultHamiltonian(300))
	if err != nil {
		b.Fatal(err)
	}
	var iters int
	var residual float64
	for i := 0; i < b.N; i++ {
		res, err := linalg.LOBPCG(linalg.DenseOperator{A: h},
			linalg.LOBPCGOptions{K: 4, MaxIter: 200, Tol: 1e-6, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iterations
		residual = 0
		for _, r := range res.Residuals {
			if r > residual {
				residual = r
			}
		}
	}
	b.ReportMetric(float64(iters), "solve-iters")
	b.ReportMetric(residual, "max-residual")
}

// BenchmarkAblationBusLadder sweeps the NVM interface generations of §3.3 on
// the UFS stack with an infinite host path, exposing the raw media effect.
func BenchmarkAblationBusLadder(b *testing.B) {
	geo := nvm.PaperGeometry()
	cp := nvm.Params(nvm.PCM)
	ladder := nvm.BusLadder()
	results := make([]float64, len(ladder))
	for i := 0; i < b.N; i++ {
		for j, bus := range ladder {
			drive, err := ssd.New(ssd.Config{
				Geometry: geo, Cell: cp, Bus: bus,
				Link:       interconnect.Infinite{},
				Translator: ssd.NewDirect(geo, cp),
				Seed:       1,
			})
			if err != nil {
				b.Fatal(err)
			}
			for off := int64(0); off < 64<<20; off += 8 << 20 {
				drive.Submit(traceRead(off, 8<<20))
			}
			results[j] = drive.Finish().MBps()
		}
	}
	for j, bus := range ladder {
		b.ReportMetric(results[j], "MBps_"+bus.Name)
	}
}

// BenchmarkAblationPAQ compares FIFO dispatch against physically addressed
// queueing on a bursty conflict-heavy trace with a shallow device queue.
func BenchmarkAblationPAQ(b *testing.B) {
	geo := nvm.PaperGeometry()
	cp := nvm.Params(nvm.TLC)
	dieStride := int64(geo.Channels*cp.Planes) * cp.PageSize
	var ops []trace.BlockOp
	for burst := 0; burst < 32; burst++ {
		die := int64(burst % 2)
		for i := 0; i < 16; i++ {
			ops = append(ops, trace.BlockOp{Kind: trace.Read, Offset: die * dieStride, Size: cp.PageSize})
		}
	}
	mk := func() *ssd.SSD {
		drive, err := ssd.New(ssd.Config{
			Geometry: geo, Cell: cp, Bus: nvm.ONFi3SDR(),
			Link:       interconnect.Infinite{},
			Translator: ssd.NewDirect(geo, cp),
			QueueDepth: 2, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return drive
	}
	var fifoBW, paqBW float64
	for i := 0; i < b.N; i++ {
		fifoBW = mk().Replay(ops).MBps()
		paqBW = ssd.NewPAQ(mk(), 32).Replay(ops).MBps()
	}
	b.ReportMetric(fifoBW, "MBps_fifo")
	b.ReportMetric(paqBW, "MBps_paq")
}

// BenchmarkClusterScale evaluates the Figure 2 architecture comparison at
// 40-node scale: per-application I/O+communication time under both
// placements, and the migration's speedup.
func BenchmarkClusterScale(b *testing.B) {
	var ionRes, cnlRes cluster.DistributedResult
	for i := 0; i < b.N; i++ {
		var err error
		ionRes, cnlRes, err = cluster.SimulateDistributed(cluster.Carver(), cluster.DefaultDistributedJob())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ionRes.PerApp.Seconds(), "s_perapp_ion")
	b.ReportMetric(cnlRes.PerApp.Seconds(), "s_perapp_cnl")
	b.ReportMetric(cluster.Speedup(ionRes, cnlRes), "x_speedup")
}

// BenchmarkEnduranceLifetime reports the §2.3 endurance ladder as device
// lifetime under a heavy preload-rewrite workload.
func BenchmarkEnduranceLifetime(b *testing.B) {
	var years [4]float64
	for i := 0; i < b.N; i++ {
		for j, c := range nvm.CellTypes {
			y, err := nvm.Lifetime(nvm.Params(c), 1<<40, 10<<40, 1.5)
			if err != nil {
				b.Fatal(err)
			}
			years[j] = y
		}
	}
	for j, c := range nvm.CellTypes {
		b.ReportMetric(years[j], "years_"+c.String())
	}
}

// BenchmarkAblationDieCount sweeps the die-interleave depth (DESIGN.md §5):
// the same medium behind 4, 8 and 16 dies per channel.
func BenchmarkAblationDieCount(b *testing.B) {
	depths := []int{4, 8, 16}
	results := make([]float64, len(depths))
	for i := 0; i < b.N; i++ {
		for j, d := range depths {
			geo := nvm.Geometry{Channels: 8, PackagesPerChannel: d / 2, DiesPerPackage: 2, BlocksPerPlane: 2048}
			cp := nvm.Params(nvm.TLC)
			drive, err := ssd.New(ssd.Config{
				Geometry: geo, Cell: cp, Bus: nvm.FutureDDR(),
				Link:       interconnect.Infinite{},
				Translator: ssd.NewDirect(geo, cp),
				Seed:       1,
			})
			if err != nil {
				b.Fatal(err)
			}
			for off := int64(0); off < 64<<20; off += 8 << 20 {
				drive.Submit(traceRead(off, 8<<20))
			}
			results[j] = drive.Finish().MBps()
		}
	}
	for j, d := range depths {
		b.ReportMetric(results[j], fmt.Sprintf("MBps_dies%d", d*8))
	}
}

// BenchmarkAblationCacheMode compares plain against dual-register cache
// reads on a cell-limited stream (SLC behind the DDR bus).
func BenchmarkAblationCacheMode(b *testing.B) {
	run := func(cache bool) float64 {
		geo := nvm.PaperGeometry()
		cp := nvm.Params(nvm.SLC)
		drive, err := ssd.New(ssd.Config{
			Geometry: geo, Cell: cp, Bus: nvm.FutureDDR(),
			Link:       interconnect.Infinite{},
			Translator: ssd.NewDirect(geo, cp),
			CacheMode:  cache,
			Seed:       1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for off := int64(0); off < 64<<20; off += 8 << 20 {
			drive.Submit(traceRead(off, 8<<20))
		}
		return drive.Finish().MBps()
	}
	var plain, cached float64
	for i := 0; i < b.N; i++ {
		plain = run(false)
		cached = run(true)
	}
	b.ReportMetric(plain, "MBps_plain")
	b.ReportMetric(cached, "MBps_cachemode")
}

// BenchmarkEnergyComparison quantifies the paper's §1 economics: Joules and
// capital for distributed-DRAM versus compute-local NVM provisioning of a
// 256 GiB per-node dataset share.
func BenchmarkEnergyComparison(b *testing.B) {
	var c energy.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		c, err = energy.Compare(256<<30, 4<<30, 3600*sim.Second, 0.7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.EnergyRatio, "x_energy")
	b.ReportMetric(c.CapitalRatio, "x_capital")
}

module oocnvm

go 1.22

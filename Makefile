GO ?= go

.PHONY: all build vet test race check fmt fuzz cover bench bench-smoke bench-gate bench-alloc benchdiff profile simcheck chaos
FUZZTIME ?= 10s

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Short bounded fuzz pass over the FTL mapping, ECC classification,
# workload-codec, checkpoint torn-write and power-cut crash-recovery
# harnesses; FUZZTIME=1m make fuzz for a longer soak.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzFTLMapping -fuzztime=$(FUZZTIME) ./internal/ftl
	$(GO) test -run=^$$ -fuzz=FuzzReadClassify -fuzztime=$(FUZZTIME) ./internal/fault
	$(GO) test -run=^$$ -fuzz=FuzzWorkloadRoundTrip -fuzztime=$(FUZZTIME) ./internal/check
	$(GO) test -run=^$$ -fuzz=FuzzCkptTornWrite -fuzztime=$(FUZZTIME) ./internal/ckpt
	$(GO) test -run=^$$ -fuzz=FuzzCrashRecovery -fuzztime=$(FUZZTIME) ./internal/check

# One pass over every figure/table benchmark, archived as JSON for diffing
# between commits and appended to the continuous-bench history the HTML
# report's trajectory sparklines read. -benchtime=1x because each whole-figure
# benchmark already runs the full evaluation matrix once.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x . \
		| $(GO) run ./cmd/benchjson -history BENCH_history.jsonl > BENCH_results.json
	@echo "wrote BENCH_results.json (history in BENCH_history.jsonl)"

# Quick subset of the figure benchmarks for CI smoke runs: enough to catch a
# perf or allocation regression without replaying every evaluation matrix.
BENCH_SMOKE = Fig7aBandwidth|Fig10Breakdown|SimulatorPageThroughput|TelemetrySampling
bench-smoke:
	$(GO) test -run='^$$' -benchmem -benchtime=1x \
		-bench='$(BENCH_SMOKE)' . \
		| $(GO) run ./cmd/benchjson > bench_smoke.json
	@echo "wrote bench_smoke.json"

# Continuous-bench gate: re-run the smoke benchmarks -count=3 (benchjson keeps
# the min, so scheduler noise only helps), then fail if allocation counts grew
# beyond 5% over the checked-in baseline. The time gate is disabled (-1):
# wall-clock numbers are not comparable across machines, allocation counts
# are deterministic.
bench-gate:
	$(GO) test -run='^$$' -benchmem -benchtime=1x -count=3 \
		-bench='$(BENCH_SMOKE)' . \
		| $(GO) run ./cmd/benchjson -history BENCH_history.jsonl > bench_smoke.json
	$(GO) run ./cmd/benchdiff -time-threshold=-1 -alloc-threshold=0.05 \
		BENCH_results.json bench_smoke.json

# Per-site allocation budget: run one attributed Figure 7a matrix and print
# the allocs-by-subsystem breakdown, then enforce the checked-in per-site
# ceilings and the steady-state per-request pins against the pooled engine.
bench-alloc:
	$(GO) run ./cmd/oocbench -fig 7a -matrix 96 -hostperf
	$(GO) test -run='PerSiteAllocBudget|SteadyStateAllocs|HostPerfAttributionCoverage' \
		-count=1 -v ./internal/experiment ./internal/ssd

# Compare two archived bench runs by hand: make benchdiff OLD=a.json NEW=b.json
OLD ?= BENCH_results.json
NEW ?= bench_smoke.json
benchdiff:
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)

# CPU + allocation profile of a representative attributed replay; inspect
# with `go tool pprof profile/cpu.pprof` (or mem.pprof).
profile:
	@mkdir -p profile
	$(GO) run ./cmd/tracegen -matrix 96 -panel 8 -fs EXT4 -block profile/profile.trace
	$(GO) run ./cmd/replay -trace profile/profile.trace -config CNL-EXT4 -cell TLC \
		-attrib -cpuprofile profile/cpu.pprof -memprofile profile/mem.pprof
	@echo "wrote profile/cpu.pprof and profile/mem.pprof"

# Cross-layer conformance sweep: integrity oracle + analytical envelopes +
# metamorphic relations over the acceptance configurations.
simcheck:
	$(GO) run ./cmd/simcheck -episodes 25 -configs CNL-UFS,CNL-EXT4,ION-GPFS -cells MLC,TLC

# Degraded-network chaos smoke: race-checked scenario matrix over the
# netfault transfer engine, the degraded preload/checkpoint path and the
# conformance envelopes, then a full replay staged through a flaky fabric
# with the HTML experiment report as the artifact.
chaos:
	$(GO) test -race -count=1 ./internal/netfault ./internal/cluster ./internal/check
	$(GO) run ./cmd/simcheck -episodes 3 -configs CNL-UFS -cells MLC -net-profile flaky
	$(GO) run ./cmd/tracegen -matrix 64 -panel 8 -apps 2 -fs EXT4 -block chaos.trace
	$(GO) run ./cmd/replay -trace chaos.trace -config CNL-EXT4 -cell TLC \
		-net-profile flaky -report-out chaos_report.html
	@test -s chaos_report.html && echo "wrote chaos_report.html"

cover:
	$(GO) test -cover ./... | tee coverage.txt

check: fmt vet build test

GO ?= go

.PHONY: all build vet test race check fmt fuzz cover
FUZZTIME ?= 10s

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Short bounded fuzz pass over the FTL mapping and ECC classification
# harnesses; FUZZTIME=1m make fuzz for a longer soak.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzFTLMapping -fuzztime=$(FUZZTIME) ./internal/ftl
	$(GO) test -run=^$$ -fuzz=FuzzReadClassify -fuzztime=$(FUZZTIME) ./internal/fault

cover:
	$(GO) test -cover ./... | tee coverage.txt

check: fmt vet build race

GO ?= go

.PHONY: all build vet test race check fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet build race

// Package oocnvm is a from-scratch reproduction of "Exploring the Future of
// Out-Of-Core Computing with Compute-Local Non-Volatile Memory" (SC '13):
// a cycle-approximate NVM device simulator (SLC/MLC/TLC NAND and PCM dies,
// planes, packages, channel buses), the host I/O stacks of the paper's
// evaluation (GPFS over InfiniBand, eight local file systems over an FTL,
// and the Unified File System over raw NVM), the PCIe/SATA/network
// interconnect models, the out-of-core LOBPCG eigensolver workload with its
// DOoC/DataCutter middleware, and an evaluation harness that regenerates
// every table and figure of the paper.
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go regenerate each experiment (go test -bench=.).
package oocnvm

// Devicedesign: the paper's §3.3/§4.4 hardware exploration — walk the device
// ladder from the bridged PCIe 2.0 x8 baseline to the native PCIe 3.0 x16
// controller with the DDR NVM bus, then ablate the individual design choices
// (encoding, lanes, bus clock, multi-plane support) to see which ones matter.
package main

import (
	"fmt"
	"log"

	"oocnvm/internal/experiment"
	"oocnvm/internal/interconnect"
	"oocnvm/internal/nvm"
	"oocnvm/internal/ooc"
)

func main() {
	opt := experiment.DefaultOptions()
	opt.Workload = ooc.Workload{MatrixBytes: 128 << 20, PanelBytes: 8 << 20, Applications: 2}
	opt.MeasureRemaining = true

	// The paper's ladder.
	configs := experiment.DeviceConfigs()
	ms, err := experiment.Matrix(configs, nvm.CellTypes, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiment.FormatBandwidthTable("Device ladder (Figure 8a)", ms, configs, nvm.CellTypes))
	fmt.Println()
	fmt.Print(experiment.FormatRemainingTable("Left on the table (Figure 8b)", ms, configs, nvm.CellTypes))
	fmt.Println()

	// Ablation: isolate each hardware lever on the PCM device.
	fmt.Println("Ablation on PCM, UFS software stack:")
	base := experiment.CNLUFS()
	steps := []struct {
		label string
		mut   func(experiment.Config) experiment.Config
	}{
		{"baseline (bridged gen2 x8, SDR bus)", func(c experiment.Config) experiment.Config { return c }},
		{"+ drop SATA bridge only", func(c experiment.Config) experiment.Config {
			c.PCIe.Bridged = false
			return c
		}},
		{"+ PCIe gen3 encoding (keep 8 lanes)", func(c experiment.Config) experiment.Config {
			c.PCIe = interconnect.PCIeConfig{Gen: interconnect.PCIeGen3, Lanes: 8}
			return c
		}},
		{"+ DDR NVM bus", func(c experiment.Config) experiment.Config {
			c.PCIe = interconnect.PCIeConfig{Gen: interconnect.PCIeGen3, Lanes: 8}
			c.Bus = nvm.FutureDDR()
			return c
		}},
		{"+ 16 lanes (full CNL-NATIVE-16)", func(c experiment.Config) experiment.Config {
			c.PCIe = interconnect.PCIeConfig{Gen: interconnect.PCIeGen3, Lanes: 16}
			c.Bus = nvm.FutureDDR()
			return c
		}},
	}
	for _, s := range steps {
		cfg := s.mut(base)
		cfg.Name = "ABLATION"
		m, err := experiment.Run(cfg, nvm.PCM, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-38s %8.0f MB/s\n", s.label, m.AchievedMBps())
	}
}

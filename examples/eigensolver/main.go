// Eigensolver: the paper's actual workload, end to end — a sparse
// configuration-interaction-style Hamiltonian stored out-of-core on
// compute-local NVM, its lowest eigenpairs computed by LOBPCG while every
// matrix panel streams through the simulated UFS/SSD stack. The eigenvalues
// are checked against a dense Jacobi reference, and the run reports both the
// numerics and the simulated I/O cost.
package main

import (
	"fmt"
	"log"
	"math"

	"oocnvm/internal/core"
	"oocnvm/internal/linalg"
	"oocnvm/internal/nvm"
	"oocnvm/internal/ooc"
)

func main() {
	// Build the Hamiltonian: sparse, symmetric, band-dominated with random
	// long-range couplings (§2.1).
	const n = 600
	h, err := ooc.Hamiltonian(ooc.DefaultHamiltonian(n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hamiltonian: %dx%d, %d nonzeros\n", n, n, h.NNZ())

	// A compute node with PCM NVM behind the paper's native PCIe 3.0 x16
	// controller — the CNL-NATIVE-16 configuration.
	node, err := core.NewNode(core.NativeNodeConfig(nvm.PCM))
	if err != nil {
		log.Fatal(err)
	}

	// Stage H onto the node in row panels and solve out-of-core: every
	// operator application streams all panels through the simulated stack.
	recorder := &ooc.Recorder{}
	sizing, err := ooc.NewMatrixStore(h, n/12, recorder)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := node.Alloc("H", sizing.Bytes()); err != nil {
		log.Fatal(err)
	}
	if err := node.Write("H", 0, sizing.Bytes()); err != nil {
		log.Fatal(err)
	}
	if err := node.Seal("H"); err != nil {
		log.Fatal(err)
	}
	storage, err := node.NewStorage("H")
	if err != nil {
		log.Fatal(err)
	}
	store, err := ooc.NewMatrixStore(h, n/12, ooc.Tee{recorder, storage})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored out-of-core: %d panels, %.2f MiB\n", store.Panels(), float64(store.Bytes())/(1<<20))

	const k = 6
	res, err := linalg.LOBPCG(store, linalg.LOBPCGOptions{K: k, MaxIter: 300, Tol: 1e-7, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LOBPCG converged=%v in %d iterations\n", res.Converged, res.Iterations)

	// Dense Jacobi reference for the same matrix.
	ref, _, err := linalg.SymEig(h.Dense())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  eigenvalue      LOBPCG          dense ref       |error|")
	for j := 0; j < k; j++ {
		fmt.Printf("  lambda_%d   %14.8f  %14.8f  %9.2e\n",
			j, res.Values[j], ref[j], math.Abs(res.Values[j]-ref[j]))
	}

	st := node.Stats()
	fmt.Printf("\nI/O: %d POSIX requests, %d MiB read at %.0f MB/s in %v simulated\n",
		len(recorder.Ops), st.BytesRead>>20, st.ReadMBps, st.Elapsed)
}

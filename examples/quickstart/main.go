// Quickstart: bring up a compute node with UFS-managed local NVM (the
// paper's Figure 2b architecture), stage a dataset onto it, stream it back,
// and read the device statistics — the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"oocnvm/internal/core"
	"oocnvm/internal/nvm"
)

func main() {
	// A compute node with the paper's baseline SSD (8 channels, 64 packages,
	// 128 SLC dies) attached over bridged PCIe 2.0 x8 and managed by UFS.
	node, err := core.NewNode(core.DefaultNodeConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node up: %.1f GiB of compute-local NVM\n", float64(node.Capacity())/(1<<30))

	// Allocate a named array on raw NVM, stage 256 MiB into it, seal it.
	const dataset = 256 << 20
	if _, err := node.Alloc("hamiltonian", dataset); err != nil {
		log.Fatal(err)
	}
	if err := node.Write("hamiltonian", 0, dataset); err != nil {
		log.Fatal(err)
	}
	if err := node.Seal("hamiltonian"); err != nil {
		log.Fatal(err)
	}

	// Stream it back the way an out-of-core solver does: large sequential
	// panel reads, twice (two operator applications).
	const panel = 8 << 20
	for pass := 0; pass < 2; pass++ {
		for off := int64(0); off < dataset; off += panel {
			if err := node.Read("hamiltonian", off, panel); err != nil {
				log.Fatal(err)
			}
		}
	}

	st := node.Stats()
	fmt.Printf("moved %d MiB written + %d MiB read in %v of simulated time\n",
		st.BytesWritten>>20, st.BytesRead>>20, st.Elapsed)
	fmt.Printf("device bandwidth: %.0f MB/s (channel util %.0f%%, package util %.0f%%)\n",
		st.ReadMBps, 100*st.Device.ChannelUtilization, 100*st.Device.PackageUtilization)
	fr := st.Device.PAL.Fractions()
	fmt.Printf("parallelism reached: PAL4 on %.0f%% of requests\n", 100*fr[nvm.PAL4-1])
}

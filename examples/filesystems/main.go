// Filesystems: the paper's Figure 7 study as a program — run the out-of-core
// workload through GPFS-over-InfiniBand, eight local file systems, and UFS on
// identical SSD hardware, and see why "existing file systems are insufficient
// to fully leverage the capabilities of existing NVM devices" (§3.2).
package main

import (
	"fmt"
	"log"

	"oocnvm/internal/experiment"
	"oocnvm/internal/nvm"
	"oocnvm/internal/ooc"
)

func main() {
	opt := experiment.DefaultOptions()
	opt.Workload = ooc.Workload{MatrixBytes: 128 << 20, PanelBytes: 8 << 20, Applications: 2}

	configs := experiment.FileSystemConfigs()
	cells := []nvm.CellType{nvm.TLC, nvm.SLC}
	ms, err := experiment.Matrix(configs, cells, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(experiment.FormatBandwidthTable("File systems on identical hardware", ms, configs, cells))
	fmt.Println()

	// The two paper claims, extracted programmatically.
	ion, _ := experiment.Lookup(ms, "ION-GPFS", nvm.SLC)
	ext2, _ := experiment.Lookup(ms, "CNL-EXT2", nvm.SLC)
	ufs, _ := experiment.Lookup(ms, "CNL-UFS", nvm.SLC)
	fmt.Printf("moving the SSD from the ION to the compute node (worst local FS, SLC): +%.0f%%\n",
		100*(ext2.AchievedMBps()/ion.AchievedMBps()-1))
	fmt.Printf("replacing the file system and FTL with UFS:                          +%.0f%% more\n",
		100*(ufs.AchievedMBps()/ext2.AchievedMBps()-1))

	ext2t, _ := experiment.Lookup(ms, "CNL-EXT2", nvm.TLC)
	btrfs, _ := experiment.Lookup(ms, "CNL-BTRFS", nvm.TLC)
	fmt.Printf("spread between best and worst local FS (TLC):                        %.1fx\n",
		btrfs.AchievedMBps()/ext2t.AchievedMBps())
}

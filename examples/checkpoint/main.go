// Checkpoint: a long out-of-core eigensolve that snapshots its state onto
// compute-local NVM every few iterations, "crashes", restores the newest
// valid snapshot (surviving a corrupted slot), and finishes — landing on the
// same eigenvalues a cold run finds, in a fraction of the remaining
// iterations.
package main

import (
	"fmt"
	"log"
	"math"

	"oocnvm/internal/ckpt"
	"oocnvm/internal/core"
	"oocnvm/internal/linalg"
	"oocnvm/internal/ooc"
)

func main() {
	const dim, k, crashAt = 400, 5, 30
	h, err := ooc.Hamiltonian(ooc.DefaultHamiltonian(dim))
	if err != nil {
		log.Fatal(err)
	}
	op := linalg.DenseOperator{A: h}

	node, err := core.NewNode(core.DefaultNodeConfig())
	if err != nil {
		log.Fatal(err)
	}
	w, err := ckpt.NewWriter(node, "solver-state", 4<<20)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: solve until the "crash", checkpointing every 5 iterations.
	fmt.Printf("phase 1: solving %dx%d for %d pairs, crash scheduled at iteration %d\n",
		dim, dim, k, crashAt)
	_, err = linalg.LOBPCG(op, linalg.LOBPCGOptions{
		K: k, MaxIter: crashAt, Tol: 1e-14, Seed: 2,
		OnIteration: func(it int, values []float64, x, p *linalg.Matrix) {
			if it%5 != 4 {
				return
			}
			st := ckpt.State{Iteration: it, Values: append([]float64(nil), values...), X: x.Clone()}
			if p != nil {
				st.P = p.Clone()
			}
			if err := w.Save(st); err != nil {
				log.Fatal(err)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  crashed after %d iterations with %d snapshots on NVM\n", crashAt, w.Saves())

	// The newest slot was half-written when the node died.
	w.Corrupt(0)
	fmt.Println("  (newest checkpoint slot corrupted by the crash)")

	// Phase 2: restore and finish.
	st, err := w.Load()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: restored iteration %d from the surviving slot\n", st.Iteration)
	resumed, err := linalg.LOBPCG(op, linalg.LOBPCGOptions{
		K: k, MaxIter: 500, Tol: 1e-8, X0: st.X, P0: st.P,
	})
	if err != nil {
		log.Fatal(err)
	}
	cold, err := linalg.LOBPCG(op, linalg.LOBPCGOptions{K: k, MaxIter: 500, Tol: 1e-8, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  resumed solve: %d more iterations (cold start needs %d)\n",
		resumed.Iterations, cold.Iterations)
	var worst float64
	for j := 0; j < k; j++ {
		if d := math.Abs(resumed.Values[j] - cold.Values[j]); d > worst {
			worst = d
		}
	}
	fmt.Printf("  eigenvalues agree with the cold run to %.1e\n", worst)

	stats := node.Stats()
	fmt.Printf("checkpoint I/O: %d KiB written, %d KiB read back, %d erases, in %v simulated\n",
		stats.BytesWritten>>10, stats.BytesRead>>10, stats.Device.Erases, stats.Elapsed)
}

// Graph: the other out-of-core algorithm families the paper's introduction
// motivates — PageRank and external-memory BFS — running against
// compute-local NVM through the same panel store as the eigensolver. The
// example contrasts their I/O cost on the baseline bridged SSD versus the
// paper's native PCIe 3.0 x16 device.
package main

import (
	"fmt"
	"log"
	"sort"

	"oocnvm/internal/core"
	"oocnvm/internal/nvm"
	"oocnvm/internal/ooc"
)

func main() {
	g, err := ooc.RandomGraph(ooc.GraphConfig{Nodes: 4000, AvgDegree: 8, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.N, g.NNZ())

	for _, cfg := range []struct {
		label string
		node  core.NodeConfig
	}{
		{"baseline CNL (bridged PCIe2 x8, SLC)", core.DefaultNodeConfig()},
		{"CNL-NATIVE-16 (PCM)", core.NativeNodeConfig(nvm.PCM)},
	} {
		node, err := core.NewNode(cfg.node)
		if err != nil {
			log.Fatal(err)
		}
		// Stage the adjacency once (sizing probe first, then the real store
		// routed through the node).
		sizing, err := ooc.NewMatrixStore(g, 500, &ooc.Recorder{})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := node.Alloc("graph", sizing.Bytes()); err != nil {
			log.Fatal(err)
		}
		if err := node.Write("graph", 0, sizing.Bytes()); err != nil {
			log.Fatal(err)
		}
		if err := node.Seal("graph"); err != nil {
			log.Fatal(err)
		}
		storage, err := node.NewStorage("graph")
		if err != nil {
			log.Fatal(err)
		}

		pr, err := ooc.PageRank(g, storage, 500, 0.85, 1e-10, 200)
		if err != nil {
			log.Fatal(err)
		}
		bfs, err := ooc.BFS(g, storage, 500, 0)
		if err != nil {
			log.Fatal(err)
		}
		st := node.Stats()
		fmt.Printf("\n%s:\n", cfg.label)
		fmt.Printf("  PageRank: %d iterations (converged %v); BFS: depth %d over %d sweeps, visited %d\n",
			pr.Iterations, pr.Converged, bfs.Depth, bfs.Sweeps, bfs.Visited)
		fmt.Printf("  simulated I/O: %d MiB read at %.0f MB/s in %v\n",
			st.BytesRead>>20, st.ReadMBps, st.Elapsed)
		if cfg.label[0] == 'b' {
			top := topRanks(pr.Ranks, 3)
			fmt.Printf("  top-ranked vertices: %v\n", top)
		}
	}
}

func topRanks(ranks []float64, k int) []int {
	idx := make([]int, len(ranks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ranks[idx[a]] > ranks[idx[b]] })
	return idx[:k]
}

// Doocpipeline: the middleware layer of §2.1 in action. A DataCutter-style
// filter pipeline computes a blocked matrix-vector product while DOoC's data
// pool keeps panels resident under a memory budget with prefetching, and the
// data-aware scheduler orders a task DAG to maximize locality. The result is
// verified against a direct computation.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"sync"

	"oocnvm/internal/dooc"
	"oocnvm/internal/linalg"
	"oocnvm/internal/ooc"
)

func main() {
	// A sparse Hamiltonian partitioned into panels; each panel is serialized
	// into the "storage" the DOoC pool loads from.
	const n, panelRows = 480, 60
	h, err := ooc.Hamiltonian(ooc.DefaultHamiltonian(n))
	if err != nil {
		log.Fatal(err)
	}
	panels := make(map[string]linalg.RowPanel)
	backing := make(map[string][]byte)
	var names []string
	for lo := 0; lo < n; lo += panelRows {
		hi := lo + panelRows
		if hi > n {
			hi = n
		}
		p := h.Panel(lo, hi)
		name := fmt.Sprintf("H[%d:%d]", lo, hi)
		panels[name] = p
		backing[name] = serialize(p)
		names = append(names, name)
	}

	// DOoC data pool: room for only a quarter of the panels at once, loading
	// from backing storage on miss.
	var loads int
	var mu sync.Mutex
	pool, err := dooc.NewDataPool(totalBytes(backing)/4, func(name string) ([]byte, error) {
		mu.Lock()
		loads++
		mu.Unlock()
		b, ok := backing[name]
		if !ok {
			return nil, fmt.Errorf("no such panel %q", name)
		}
		return b, nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The input block: 4 right-hand sides.
	x := linalg.NewMatrix(n, 4)
	for i := range x.Data {
		x.Data[i] = math.Sin(float64(i) * 0.37)
	}
	y := linalg.NewMatrix(n, 4)

	// One task per panel, all feeding a final reduction; the scheduler's
	// data-aware ordering prefers panels already resident.
	var tasks []dooc.Task
	for _, name := range names {
		name := name
		tasks = append(tasks, dooc.Task{
			ID:      "spmv:" + name,
			Inputs:  []string{name},
			Outputs: []string{"y:" + name},
			Fn: func() error {
				if _, err := pool.Get(name); err != nil {
					return err
				}
				panels[name].MulInto(x, y) // disjoint row ranges: no races
				return nil
			},
		})
	}
	var normOnce sync.Once
	var norm float64
	reduce := dooc.Task{ID: "norm", Fn: func() error {
		normOnce.Do(func() { norm = y.FrobeniusNorm() })
		return nil
	}}
	for _, name := range names {
		reduce.Inputs = append(reduce.Inputs, "y:"+name)
	}
	tasks = append(tasks, reduce)

	// Prefetch the first wave (DOoC's "basic prefetching"), then run.
	pool.Prefetch(names[0], names[1])()
	sched, err := dooc.NewScheduler(4, pool.Resident)
	if err != nil {
		log.Fatal(err)
	}
	order, err := sched.Run(tasks)
	if err != nil {
		log.Fatal(err)
	}

	want := h.Mul(x).FrobeniusNorm()
	hits, misses, evictions := pool.Stats()
	fmt.Printf("pipeline ran %d tasks (%d panel loads, %d pool hits, %d evictions)\n",
		len(order), loads, hits, evictions)
	fmt.Printf("‖H·X‖ via DOoC pipeline: %.10f\n", norm)
	fmt.Printf("‖H·X‖ direct:            %.10f  (|Δ| = %.2e)\n", want, math.Abs(norm-want))
	if math.Abs(norm-want) > 1e-9 {
		log.Fatal("mismatch between pipeline and direct computation")
	}

	if misses == 0 {
		log.Fatal("expected pool misses under a constrained budget")
	}
}

func serialize(p linalg.RowPanel) []byte {
	buf := make([]byte, 8*len(p.RowPtr)+12*len(p.Val))
	at := 0
	for _, r := range p.RowPtr {
		binary.LittleEndian.PutUint64(buf[at:], uint64(r))
		at += 8
	}
	for i := range p.Val {
		binary.LittleEndian.PutUint32(buf[at:], uint32(p.Col[i]))
		at += 4
		binary.LittleEndian.PutUint64(buf[at:], math.Float64bits(p.Val[i]))
		at += 8
	}
	return buf
}

func totalBytes(m map[string][]byte) int64 {
	var t int64
	for _, b := range m {
		t += int64(len(b))
	}
	return t
}
